// Package refchol is an independent, column-compressed, up-looking sparse
// Cholesky factorization (the classical row-by-row algorithm driven by the
// elimination tree). It exists as a cross-check: it shares no code with the
// blocked supernodal path (packages symbolic/blocks/numeric), so agreement
// between the two factorizations validates both. It also serves as the
// "true sequential algorithm" the paper mentions as slightly faster than
// running the parallel algorithm on one processor.
package refchol

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"blockfanout/internal/etree"
	"blockfanout/internal/kernels"
	"blockfanout/internal/sparse"
)

// ErrNotPositiveDefinite mirrors kernels.ErrNotPositiveDefinite for this
// independent implementation.
var ErrNotPositiveDefinite = errors.New("refchol: matrix is not positive definite")

// Factor is a sparse lower-triangular Cholesky factor stored by columns:
// column j holds the strictly-below-diagonal rows (ascending) in Rows[j] /
// Vals[j], and its diagonal entry in Diag[j].
type Factor struct {
	N    int
	Diag []float64
	Rows [][]int32
	Vals [][]float64
}

// Compute factors the (already permuted, if desired) matrix a = L·Lᵀ using
// the up-looking algorithm: row k of L is produced by a sparse triangular
// solve whose pattern is found by walking the elimination tree from the
// entries of A's row k.
func Compute(a *sparse.Matrix) (*Factor, error) {
	n := a.N
	t := etree.Build(a)
	f := &Factor{
		N:    n,
		Diag: make([]float64, n),
		Rows: make([][]int32, n),
		Vals: make([][]float64, n),
	}

	// rowAdj: for row k, the columns j < k with A(k,j) ≠ 0.
	rowPtr := make([]int, n+1)
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if i := a.RowInd[p]; i != j {
				rowPtr[i+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	rowInd := make([]int, rowPtr[n])
	rowVal := make([]float64, rowPtr[n])
	next := append([]int(nil), rowPtr[:n]...)
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if i := a.RowInd[p]; i != j {
				rowInd[next[i]] = j
				rowVal[next[i]] = a.Val[p]
				next[i]++
			}
		}
	}

	x := make([]float64, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	pattern := make([]int, 0, 64)

	for k := 0; k < n; k++ {
		// Row-k pattern: union of etree paths from A(k,j), j<k, up to k.
		pattern = pattern[:0]
		for p := rowPtr[k]; p < rowPtr[k+1]; p++ {
			j := rowInd[p]
			x[j] = rowVal[p]
			for r := j; r != -1 && r < k && mark[r] != k; r = t.Parent[r] {
				mark[r] = k
				pattern = append(pattern, r)
			}
		}
		sort.Ints(pattern)

		d := a.Val[a.ColPtr[k]] // diagonal of column k
		for _, j := range pattern {
			lkj := x[j] / f.Diag[j]
			x[j] = 0
			rows, vals := f.Rows[j], f.Vals[j]
			for p := range rows {
				x[rows[p]] -= lkj * vals[p]
			}
			d -= lkj * lkj
			f.Rows[j] = append(f.Rows[j], int32(k))
			f.Vals[j] = append(f.Vals[j], lkj)
		}
		if !(d > 0) || math.IsInf(d, 1) {
			// Wrap both the package sentinel and a structured PivotError so
			// callers can match either errors.Is(err, ErrNotPositiveDefinite)
			// or errors.As(err, &*kernels.PivotError).
			return nil, fmt.Errorf("%w: %w", ErrNotPositiveDefinite,
				&kernels.PivotError{Block: -1, Row: k, Pivot: d})
		}
		f.Diag[k] = math.Sqrt(d)
	}
	return f, nil
}

// NNZ returns the number of below-diagonal factor entries.
func (f *Factor) NNZ() int64 {
	var nz int64
	for _, r := range f.Rows {
		nz += int64(len(r))
	}
	return nz
}

// At returns L(i,j) (i ≥ j); zero when the entry is not stored.
func (f *Factor) At(i, j int) float64 {
	if i == j {
		return f.Diag[j]
	}
	rows := f.Rows[j]
	lo, hi := 0, len(rows)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(rows[mid]) < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(rows) && int(rows[lo]) == i {
		return f.Vals[j][lo]
	}
	return 0
}

// Solve solves L·Lᵀ·x = b, overwriting and returning a copy of b.
func (f *Factor) Solve(b []float64) []float64 {
	x := append([]float64(nil), b...)
	for j := 0; j < f.N; j++ {
		x[j] /= f.Diag[j]
		xj := x[j]
		rows, vals := f.Rows[j], f.Vals[j]
		for p := range rows {
			x[rows[p]] -= vals[p] * xj
		}
	}
	for j := f.N - 1; j >= 0; j-- {
		rows, vals := f.Rows[j], f.Vals[j]
		s := x[j]
		for p := range rows {
			s -= vals[p] * x[rows[p]]
		}
		x[j] = s / f.Diag[j]
	}
	return x
}
