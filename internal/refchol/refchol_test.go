package refchol

import (
	"math"
	"testing"
	"testing/quick"

	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sparse"
)

func TestAgainstDense(t *testing.T) {
	m := gen.IrregularMesh(80, 4, 3, 9)
	f, err := Compute(m)
	if err != nil {
		t.Fatal(err)
	}
	// Dense reference.
	d := m.Dense()
	n := m.N
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		v := d[j][j]
		for k := 0; k < j; k++ {
			v -= l[j][k] * l[j][k]
		}
		l[j][j] = math.Sqrt(v)
		for i := j + 1; i < n; i++ {
			s := d[i][j]
			for k := 0; k < j; k++ {
				s -= l[i][k] * l[j][k]
			}
			l[i][j] = s / l[j][j]
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(f.At(i, j)-l[i][j]) > 1e-10*(1+math.Abs(l[i][j])) {
				t.Fatalf("L(%d,%d)=%g, want %g", i, j, f.At(i, j), l[i][j])
			}
		}
	}
}

func TestNNZMatchesSymbolicPrediction(t *testing.T) {
	m := gen.Grid2D(11)
	f, err := Compute(m)
	if err != nil {
		t.Fatal(err)
	}
	want := etree.FactorStats(etree.Build(m).ColCounts()).NZinL
	if f.NNZ() != want {
		t.Fatalf("numeric nnz %d != symbolic %d", f.NNZ(), want)
	}
}

func TestSolve(t *testing.T) {
	for _, m := range []*sparse.Matrix{
		gen.Grid2D(12),
		gen.Cube3D(4),
		gen.IrregularMesh(150, 5, 3, 6),
		gen.Dense(30),
	} {
		f, err := Compute(m)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, m.N)
		for i := range b {
			b[i] = math.Cos(float64(i) * 0.3)
		}
		x := f.Solve(b)
		if r := m.ResidualNorm(x, b); r > 1e-9 {
			t.Fatalf("residual %g", r)
		}
	}
}

func TestWithFillReducingPermutation(t *testing.T) {
	m := gen.IrregularMesh(200, 5, 3, 14)
	p, err := ord.Compute(ord.MinDegree, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Compute(pm)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m.N)
	for i := range b {
		b[i] = 1
	}
	x := f.Solve(b)
	if r := pm.ResidualNorm(x, b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

func TestNotPositiveDefinite(t *testing.T) {
	m := gen.Grid2D(4)
	m.Val[m.ColPtr[5]] = -1
	if _, err := Compute(m); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

// Property: refchol solves random SPD meshes to tiny residuals.
func TestQuickSolve(t *testing.T) {
	f := func(seed uint16) bool {
		n := 30 + int(seed%60)
		m := gen.IrregularMesh(n, 4, 3, uint64(seed)+3)
		fac, err := Compute(m)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = float64(i%5) - 2
		}
		x := fac.Solve(b)
		return m.ResidualNorm(x, b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
