package core

import (
	"context"
	"math"
	"testing"

	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	"blockfanout/internal/order"
	"blockfanout/internal/sparse"
)

// refactorFixture returns a plan, a parallel factor, and a same-pattern
// value variant of the plan's matrix.
func refactorFixture(t testing.TB) (*Plan, *Factor, []float64) {
	t.Helper()
	a := gen.IrregularMesh(300, 6, 3, 23)
	plan, err := NewPlan(a, Options{Ordering: order.MinDegree, BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	g := mapping.Grid{Pr: 2, Pc: 2}
	f, err := plan.Factor(plan.Assign(plan.Map(g, mapping.ID, mapping.CY), 2))
	if err != nil {
		t.Fatal(err)
	}
	vals := append([]float64(nil), a.Val...)
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if a.RowInd[p] != j {
				vals[p] *= 0.7
			} else {
				vals[p] *= 1.3
			}
		}
	}
	return plan, f, vals
}

// TestRefactorMatchesFromScratch: Plan.Refactor on a fixed pattern with new
// values must match a from-scratch NewPlan+Factor to 1e-12 relative — the
// PR's acceptance criterion.
func TestRefactorMatchesFromScratch(t *testing.T) {
	plan, f, vals := refactorFixture(t)
	if err := plan.Refactor(f, vals); err != nil {
		t.Fatal(err)
	}

	a2 := plan.A.Clone()
	copy(a2.Val, vals)
	plan2, err := NewPlan(a2, Options{Ordering: order.MinDegree, BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := plan2.Factor(plan2.Assign(plan2.Map(mapping.Grid{Pr: 2, Pc: 2}, mapping.ID, mapping.CY), 2))
	if err != nil {
		t.Fatal(err)
	}

	// Orderings are deterministic, so both factors live on the same
	// permuted pattern; compare block data directly.
	nf, nf2 := f.Numeric(), f2.Numeric()
	for j := range nf.Data {
		for bi := range nf.Data[j] {
			for i, v := range nf.Data[j][bi] {
				w := nf2.Data[j][bi][i]
				if math.Abs(v-w) > 1e-12*(1+math.Abs(w)) {
					t.Fatalf("block (%d,%d)[%d]: refactored %g vs from-scratch %g", j, bi, i, v, w)
				}
			}
		}
	}

	// And the refactored factor solves the new system.
	b := make([]float64, plan.A.N)
	for i := range b {
		b[i] = float64(i%5) + 1
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := f.Residual(x, b); r > 1e-8 {
		t.Fatalf("refactored solve residual %g", r)
	}
}

// TestFactorValuesMatchesFromScratch: a cached plan factoring a same-
// pattern matrix via FactorValuesContext must use the supplied values, not
// the values the plan was analyzed from, and match a from-scratch
// NewPlan+Factor of the new matrix.
func TestFactorValuesMatchesFromScratch(t *testing.T) {
	plan, _, vals := refactorFixture(t)
	asn := plan.Assign(plan.Map(mapping.Grid{Pr: 2, Pc: 2}, mapping.ID, mapping.CY), 2)
	f, err := plan.FactorValuesContext(context.Background(), asn, vals)
	if err != nil {
		t.Fatal(err)
	}

	a2 := plan.A.Clone()
	copy(a2.Val, vals)
	plan2, err := NewPlan(a2, Options{Ordering: order.MinDegree, BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := plan2.Factor(plan2.Assign(plan2.Map(mapping.Grid{Pr: 2, Pc: 2}, mapping.ID, mapping.CY), 2))
	if err != nil {
		t.Fatal(err)
	}
	nf, nf2 := f.Numeric(), f2.Numeric()
	for j := range nf.Data {
		for bi := range nf.Data[j] {
			for i, v := range nf.Data[j][bi] {
				w := nf2.Data[j][bi][i]
				if math.Abs(v-w) > 1e-12*(1+math.Abs(w)) {
					t.Fatalf("block (%d,%d)[%d]: values-factor %g vs from-scratch %g", j, bi, i, v, w)
				}
			}
		}
	}

	// The factor reports the matrix it actually represents (the new values).
	if got := f.Matrix().Val[0]; got != vals[0] {
		t.Fatalf("factor matrix carries value %g at 0; want %g", got, vals[0])
	}
	b := make([]float64, plan.A.N)
	for i := range b {
		b[i] = 1
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := f.Residual(x, b); r > 1e-8 {
		t.Fatalf("values-factor solve residual %g", r)
	}
}

// TestRefactorZeroSymbolicAllocs asserts Refactor skips
// ordering/symbolic/partition entirely: steady-state allocations per
// Refactor stay a tiny constant (per-run goroutine control state only),
// while any symbolic re-analysis would allocate proportionally to the
// thousands of structure entries of the fixture.
func TestRefactorZeroSymbolicAllocs(t *testing.T) {
	a := gen.IrregularMesh(300, 6, 3, 23)
	plan, err := NewPlan(a, Options{Ordering: order.MinDegree, BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Single processor keeps goroutine startup noise at its floor.
	g := mapping.Grid{Pr: 1, Pc: 1}
	f, err := plan.Factor(plan.Assign(plan.Map(g, mapping.ID, mapping.CY), 0))
	if err != nil {
		t.Fatal(err)
	}
	vals := append([]float64(nil), a.Val...)
	if err := f.Refactor(vals); err != nil { // warm the scratch buffers
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5, func() {
		if err := f.Refactor(vals); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 24
	if avg > budget {
		t.Fatalf("Refactor averaged %.1f allocations; want ≤ %d (no symbolic-phase allocation)", avg, budget)
	}
}

func TestRefactorErrors(t *testing.T) {
	plan, f, vals := refactorFixture(t)

	if err := f.Refactor(vals[:len(vals)-1]); err == nil {
		t.Fatal("Refactor accepted a short value slice")
	}
	bad := append([]float64(nil), vals...)
	bad[3] = math.NaN()
	if err := f.Refactor(bad); err == nil {
		t.Fatal("Refactor accepted NaN values")
	}
	bad[3] = math.Inf(1)
	if err := f.Refactor(bad); err == nil {
		t.Fatal("Refactor accepted Inf values")
	}

	other := gen.Grid2D(10)
	otherPlan, err := NewPlan(other, Options{Ordering: order.NDGrid2D, GridDim: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := otherPlan.Refactor(f, other.Val); err == nil {
		t.Fatal("Plan.Refactor accepted a factor from a different plan")
	}

	// Cancelled context aborts the parallel refactorization.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.RefactorContext(ctx, vals); err == nil {
		t.Fatal("RefactorContext ignored a cancelled context")
	}
	// The factor recovers on the next successful refactor.
	if err := f.Refactor(vals); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, plan.A.N)
	for i := range b {
		b[i] = 1
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := f.Residual(x, b); r > 1e-8 {
		t.Fatalf("post-cancel refactor residual %g", r)
	}
}

// TestRefactorSequential covers the sequential-factor refactor path.
func TestRefactorSequential(t *testing.T) {
	a := gen.Grid2D(15)
	plan, err := NewPlan(a, Options{Ordering: order.NDGrid2D, GridDim: 15, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	f, err := plan.FactorSequential()
	if err != nil {
		t.Fatal(err)
	}
	vals := append([]float64(nil), a.Val...)
	for i := range vals {
		vals[i] *= 2
	}
	if err := f.Refactor(vals); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := f.Residual(x, b); r > 1e-9 {
		t.Fatalf("sequential refactor residual %g", r)
	}
	// Scaling A by 2 halves the solution; check against the original system.
	x0, err := plan.FactorSequential()
	if err != nil {
		t.Fatal(err)
	}
	y, err := x0.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(2*x[i]-y[i]) > 1e-8*(1+math.Abs(y[i])) {
			t.Fatalf("x[%d]: scaled system solution %g, want %g/2", i, x[i], y[i])
		}
	}
}

// TestRestoreFactorRoundTrip factors, exports the block data, restores a
// fresh Factor from it, and checks restored solves and a subsequent
// refactor both work — the warm-start contract of the snapshot store.
func TestRestoreFactorRoundTrip(t *testing.T) {
	m := gen.IrregularMesh(500, 7, 3, 11)
	plan, err := NewPlan(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := mapping.BestGrid(4)
	a := plan.Assign(plan.Map(g, mapping.ID, mapping.CY), 2)
	f, err := plan.FactorContext(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	blocks := f.Numeric().ExportBlocks()

	rf, err := plan.RestoreFactor(a, m.Val, blocks)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(1 + i%7)
	}
	x, err := rf.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := m.ResidualNorm(x, b); r > 1e-8 {
		t.Fatalf("restored factor solve residual %g", r)
	}
	if rf.Matrix() == nil || rf.Matrix().Val[0] != m.Val[0] {
		t.Fatal("restored factor does not describe the snapshot values")
	}

	// A restored factor must refactor in place like a computed one.
	v2 := append([]float64(nil), m.Val...)
	for j := 0; j < m.N; j++ {
		v2[m.ColPtr[j]] *= 3
	}
	if err := rf.Refactor(v2); err != nil {
		t.Fatal(err)
	}
	m2 := &sparse.Matrix{N: m.N, ColPtr: m.ColPtr, RowInd: m.RowInd, Val: v2}
	x2, err := rf.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := m2.ResidualNorm(x2, b); r > 1e-8 {
		t.Fatalf("post-restore refactor solve residual %g", r)
	}

	// Shape mismatches are rejected, not truncated.
	if _, err := plan.RestoreFactor(a, m.Val, blocks[:len(blocks)-1]); err == nil {
		t.Fatal("short snapshot accepted")
	}
	bad := append([][]float64(nil), blocks...)
	bad[0] = bad[0][:len(bad[0])-1]
	if _, err := plan.RestoreFactor(a, m.Val, bad); err == nil {
		t.Fatal("wrong-length block accepted")
	}
}
