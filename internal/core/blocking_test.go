package core

import (
	"testing"

	"blockfanout/internal/blocks"
	"blockfanout/internal/fanout"
	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	ord "blockfanout/internal/order"
)

// TestNewPlanBlockingStrategies builds a plan per strategy, factors it in
// parallel, and checks the solution: every strategy must be usable
// end-to-end through the public pipeline.
func TestNewPlanBlockingStrategies(t *testing.T) {
	m := gen.IrregularMesh(220, 5, 3, 13)
	for _, strat := range []blocks.Strategy{
		blocks.StrategyUniform, blocks.StrategyStaged, blocks.StrategyCycled, blocks.StrategyIrregular,
	} {
		t.Run(strat.String(), func(t *testing.T) {
			plan, err := NewPlan(m, Options{Ordering: ord.MinDegree, BlockSize: 12, Blocking: strat})
			if err != nil {
				t.Fatal(err)
			}
			if strat == blocks.StrategyIrregular {
				// Irregular panels never cross supernode boundaries.
				for p := 0; p < plan.BS.Part.N(); p++ {
					s := plan.BS.Part.SnodeOf[p]
					lo, hi := plan.BS.Part.Start[p], plan.BS.Part.Start[p+1]
					if plan.Sym.SnodeOf[lo] != s || plan.Sym.SnodeOf[hi-1] != s {
						t.Fatalf("panel %d crosses supernode boundary", p)
					}
				}
			}
			mp := plan.Map(mapping.Grid{Pr: 2, Pc: 2}, mapping.ID, mapping.CY)
			f, err := plan.Factor(plan.Assign(mp, 2))
			if err != nil {
				t.Fatal(err)
			}
			b := make([]float64, m.N)
			for i := range b {
				b[i] = 1
			}
			x, err := f.Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			if r := f.Residual(x, b); r > 1e-8 {
				t.Fatalf("residual %g", r)
			}
		})
	}
}

// TestNewPlanIrregularThreshold checks that the relative-fill threshold is
// the coarsening knob: a larger threshold must not produce more supernodes.
func TestNewPlanIrregularThreshold(t *testing.T) {
	m := gen.IrregularMesh(300, 6, 3, 21)
	prev := -1
	for _, frac := range []float64{0.02, 0.10, 0.40} {
		plan, err := NewPlan(m, Options{Ordering: ord.MinDegree, Blocking: blocks.StrategyIrregular, AmalgThreshold: frac})
		if err != nil {
			t.Fatal(err)
		}
		n := len(plan.Sym.Snodes)
		if prev >= 0 && n > prev {
			t.Fatalf("threshold %g produced %d supernodes, more than the finer %d", frac, n, prev)
		}
		prev = n
	}
}

// TestConfigKeyDistinguishesOptions pins the cache-key contract: any option
// that changes the analyzed plan must change ConfigKey, and equal options
// must agree.
func TestConfigKeyDistinguishesOptions(t *testing.T) {
	base := Options{Ordering: ord.MinDegree, BlockSize: 16}
	if base.ConfigKey() != (Options{Ordering: ord.MinDegree, BlockSize: 16}).ConfigKey() {
		t.Fatal("equal options disagree")
	}
	variants := []Options{
		{Ordering: ord.MinDegree, BlockSize: 32},
		{Ordering: ord.Natural, BlockSize: 16},
		{Ordering: ord.MinDegree, BlockSize: 16, GridDim: 4},
		{Ordering: ord.MinDegree, BlockSize: 16, Blocking: blocks.StrategyStaged},
		{Ordering: ord.MinDegree, BlockSize: 16, Blocking: blocks.StrategyIrregular},
		{Ordering: ord.MinDegree, BlockSize: 16, Blocking: blocks.StrategyIrregular, AmalgThreshold: 0.2},
		// The executor mode changes no symbolic structure, but serving
		// tiers key executors off cached plan entries, so it must still
		// separate cache keys (the regression behind this line: SPMD and
		// steal requests aliasing one entry).
		{Ordering: ord.MinDegree, BlockSize: 16, Exec: fanout.ModeSPMD},
	}
	seen := map[uint64]int{base.ConfigKey(): -1}
	for i, v := range variants {
		k := v.ConfigKey()
		if j, dup := seen[k]; dup {
			t.Fatalf("variants %d and %d share key %016x", i, j, k)
		}
		seen[k] = i
	}
}
