package core

import (
	"math"
	"strings"
	"testing"

	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	"blockfanout/internal/order"
)

// TestSolveRejectsBadRHS table-drives the total-function contract of every
// solve entry point: dimension-mismatched or non-finite right-hand sides
// must produce descriptive errors, never panics — the serving layer calls
// these with untrusted request bodies.
func TestSolveRejectsBadRHS(t *testing.T) {
	a := gen.Grid2D(12)
	plan, err := NewPlan(a, Options{Ordering: order.NDGrid2D, GridDim: 12, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	f, err := plan.Factor(plan.Assign(plan.Map(mapping.Grid{Pr: 2, Pc: 2}, mapping.ID, mapping.CY), 2))
	if err != nil {
		t.Fatal(err)
	}
	n := a.N

	good := make([]float64, n)
	for i := range good {
		good[i] = 1
	}
	withNaN := append([]float64(nil), good...)
	withNaN[n/2] = math.NaN()
	withInf := append([]float64(nil), good...)
	withInf[0] = math.Inf(-1)

	cases := []struct {
		name    string
		b       []float64
		wantErr string // substring; empty means success expected
	}{
		{"ok", good, ""},
		{"nil", nil, "length"},
		{"empty", []float64{}, "length"},
		{"short", good[:n-1], "length"},
		{"long", append(append([]float64(nil), good...), 1), "length"},
		{"nan", withNaN, "not finite"},
		{"inf", withInf, "not finite"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			check := func(op string, err error) {
				t.Helper()
				if tc.wantErr == "" {
					if err != nil {
						t.Fatalf("%s: unexpected error %v", op, err)
					}
					return
				}
				if err == nil {
					t.Fatalf("%s: no error for %s rhs", op, tc.name)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("%s: error %q does not mention %q", op, err, tc.wantErr)
				}
			}

			_, err := f.Solve(tc.b)
			check("Solve", err)
			_, err = f.SolveParallel(tc.b)
			check("SolveParallel", err)
			_, err = f.SolveMany([][]float64{tc.b})
			check("SolveMany", err)
			_, _, _, err = f.SolveRefined(tc.b, 2, 1e-12)
			check("SolveRefined", err)
		})
	}

	// A bad vector anywhere in a batch fails the whole batch.
	if _, err := f.SolveMany([][]float64{good, withNaN, good}); err == nil {
		t.Fatal("SolveMany accepted a batch containing a NaN rhs")
	} else if !strings.Contains(err.Error(), "rhs 1") {
		t.Fatalf("SolveMany error %q does not identify the offending vector", err)
	}

	if _, _, _, err := f.SolveRefined(good, -1, 1e-12); err == nil {
		t.Fatal("SolveRefined accepted a negative iteration count")
	}
}
