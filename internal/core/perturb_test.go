package core

import (
	"context"
	"errors"
	"testing"

	"blockfanout/internal/gen"
	"blockfanout/internal/kernels"
	"blockfanout/internal/mapping"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sparse"
)

// indefiniteValues returns a value vector for m's pattern that is not
// positive definite: the SPD values with one diagonal entry negated.
func indefiniteValues(t *testing.T, plan *Plan, col int) []float64 {
	t.Helper()
	vals := append([]float64(nil), plan.A.Val...)
	vals[plan.A.ColPtr[col]] = -vals[plan.A.ColPtr[col]]
	return vals
}

func planForPerturb(t *testing.T) *Plan {
	t.Helper()
	m := gen.IrregularMesh(150, 5, 3, 5)
	plan, err := NewPlan(m, Options{Ordering: ord.MinDegree, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestFactorValuesPropagatesPivotError(t *testing.T) {
	plan := planForPerturb(t)
	a := plan.Assign(plan.Map(mapping.Grid{Pr: 2, Pc: 2}, mapping.ID, mapping.CY), 0)
	bad := indefiniteValues(t, plan, 40)
	_, err := plan.FactorValuesContext(context.Background(), a, bad)
	var pe *kernels.PivotError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *kernels.PivotError", err)
	}
	if !errors.Is(err, kernels.ErrNotPositiveDefinite) {
		t.Fatalf("%v does not match the sentinel", err)
	}
	if pe.Row < 0 || pe.Row >= plan.A.N {
		t.Fatalf("pivot row %d out of range", pe.Row)
	}
}

func TestPerturbationRecoversIndefiniteMatrix(t *testing.T) {
	plan := planForPerturb(t)
	a := plan.Assign(plan.Map(mapping.Grid{Pr: 2, Pc: 2}, mapping.ID, mapping.CY), 0)
	bad := indefiniteValues(t, plan, 40)

	f, shift, err := plan.FactorValuesPerturbedContext(context.Background(), a, bad, Perturbation{})
	if err != nil {
		t.Fatalf("perturbed factorization failed: %v", err)
	}
	if shift <= 0 {
		t.Fatalf("indefinite matrix factored with shift %g, expected a positive shift", shift)
	}
	// The factor solves the shifted system A + αI; check the residual
	// against that matrix, not the indefinite input.
	b := make([]float64, plan.A.N)
	for i := range b {
		b[i] = 1
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	shifted := append([]float64(nil), bad...)
	for j := 0; j < plan.A.N; j++ {
		shifted[plan.A.ColPtr[j]] += shift
	}
	sm := &sparse.Matrix{N: plan.A.N, ColPtr: plan.A.ColPtr, RowInd: plan.A.RowInd, Val: shifted}
	if r := sm.ResidualNorm(x, b); r > 1e-6 {
		t.Fatalf("residual %g against the shifted matrix", r)
	}

	// SPD values must factor with zero shift through the same entry point.
	f2, shift2, err := plan.FactorValuesPerturbedContext(context.Background(), a, plan.A.Val, Perturbation{})
	if err != nil || shift2 != 0 {
		t.Fatalf("SPD matrix: shift %g err %v", shift2, err)
	}
	if _, err := f2.Solve(b); err != nil {
		t.Fatal(err)
	}
}

func TestPerturbationBoundedAttempts(t *testing.T) {
	plan := planForPerturb(t)
	a := plan.Assign(plan.Map(mapping.Grid{Pr: 1, Pc: 1}, mapping.ID, mapping.CY), 0)
	// A violently indefinite matrix: every diagonal strongly negative, so
	// small shifts cannot rescue it and the attempt bound must trip.
	bad := append([]float64(nil), plan.A.Val...)
	for j := 0; j < plan.A.N; j++ {
		bad[plan.A.ColPtr[j]] = -1e6
	}
	nf, err := plan.FactorValuesContext(context.Background(), a, plan.A.Val)
	if err != nil {
		t.Fatal(err)
	}
	_, err = nf.RefactorPerturbedContext(context.Background(), bad,
		Perturbation{InitialShift: 1e-12, Growth: 2, MaxAttempts: 3})
	if err == nil {
		t.Fatal("hopeless matrix factored")
	}
	if !errors.Is(err, kernels.ErrNotPositiveDefinite) {
		t.Fatalf("got %v, want wrapped pivot failure", err)
	}
}
