// Package core is the public entry point of the library. It wires the
// substrates together into the paper's pipeline:
//
//	reorder (ND / minimum degree) → postorder → symbolic factorization
//	→ supernode amalgamation → block partition (B=48) → block mapping
//	→ {real parallel factorization | simulated multicomputer run}
//
// A Plan captures everything up to the block structure; mappings,
// factorizations, simulations, and analyses are derived from it.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"blockfanout/internal/blocks"
	"blockfanout/internal/critpath"
	"blockfanout/internal/domains"
	"blockfanout/internal/etree"
	"blockfanout/internal/fanout"
	"blockfanout/internal/kernels"
	"blockfanout/internal/loadbal"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
	"blockfanout/internal/numeric"
	"blockfanout/internal/obs"
	"blockfanout/internal/order"
	"blockfanout/internal/sched"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

// DefaultBlockSize is the paper's block size B = 48.
const DefaultBlockSize = 48

// Options configure plan construction.
type Options struct {
	// BlockSize is the target panel width B (default 48). For the irregular
	// strategy it caps the panel width (blocks.IrregularConfig.MaxPanel).
	BlockSize int
	// Ordering selects the fill-reducing ordering (default MinDegree for
	// general matrices; use NDGrid2D/NDCube3D with GridDim for model
	// problems, or Natural for dense matrices).
	Ordering order.Method
	// GridDim is the grid side length for the geometric orderings.
	GridDim int
	// Amalgamation controls relaxed supernode merging; zero value means
	// symbolic.DefaultAmalgamation() (or the relative-fill config derived
	// from AmalgThreshold under the irregular strategy).
	Amalgamation *symbolic.AmalgamationConfig
	// Blocking selects the partitioning strategy (default StrategyUniform,
	// the paper's fixed-width panels).
	Blocking blocks.Strategy
	// AmalgThreshold is the relative-fill amalgamation threshold used by the
	// irregular strategy when Amalgamation is nil: merging a child into its
	// parent supernode is accepted while the introduced explicit zeros stay
	// under this fraction of the merged trapezoid. ≤0 means the default
	// (symbolic.DefaultAmalgamation().MaxZeroFrac).
	AmalgThreshold float64
	// Exec selects the parallel execution engine (default
	// fanout.ModeWorkStealing). It does not change the analyzed structure,
	// but it is part of ConfigKey: an executor is built per plan entry by
	// the serving tier, so plans requested under different engines must
	// never alias in the plan cache.
	Exec fanout.Mode
	// MapSource records the provenance of the block→processor mapping the
	// plan's factors are built under. The zero value (MapStatic) is the
	// modeled-flop heuristic mapping and keeps ConfigKey identical to
	// pre-provenance keys; MapTuned marks a mapping rebuilt from a measured
	// cost profile (internal/tune). It is part of ConfigKey so a tuned plan
	// and its static-mapped ancestor — same pattern, same analysis options —
	// can never alias in the plan cache or serve each other's snapshots.
	MapSource MapSource
	// MapFingerprint distinguishes tuned mappings built from different cost
	// profiles (tune.CostProfile.Fingerprint). Zero — and ignored — under
	// MapStatic.
	MapFingerprint uint64
}

// MapSource is the provenance of a plan's block→processor mapping.
type MapSource uint8

const (
	// MapStatic is the default modeled-flop heuristic mapping.
	MapStatic MapSource = iota
	// MapTuned is a mapping rebuilt from measured span costs.
	MapTuned
)

// ConfigKey returns a 64-bit FNV-1a digest of every option that changes the
// analyzed plan. The plan cache mixes it into the pattern key so plans built
// with different blocking strategies, block sizes, orderings, or
// amalgamation settings never collide on the same matrix pattern.
func (o Options) ConfigKey() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(o.BlockSize))
	mix(uint64(o.Ordering))
	mix(uint64(o.GridDim))
	mix(uint64(o.Blocking))
	mix(uint64(o.Exec))
	mix(math.Float64bits(o.AmalgThreshold))
	if o.Amalgamation != nil {
		mix(1)
		mix(uint64(o.Amalgamation.MaxZeros))
		mix(math.Float64bits(o.Amalgamation.MaxZeroFrac))
	}
	// Mapping provenance is mixed only when non-static so every pre-existing
	// static key (and the snapshots filed under it) stays valid.
	if o.MapSource != MapStatic {
		mix(uint64(o.MapSource))
		mix(o.MapFingerprint)
	}
	return h
}

// Plan is the analyzed, partitioned problem, ready to be mapped and
// factored. A Plan depends only on the matrix's sparsity structure (values
// ride along but are never consulted by the analysis), so one Plan can
// factor any matrix sharing A's pattern — the refactorization and
// plan-cache machinery is built on exactly that property. All Plan methods
// are safe for concurrent use; the Plan itself is never mutated after
// NewPlan.
type Plan struct {
	// Opts are the options the plan was built with; factorization entry
	// points read Opts.Exec to pick the execution engine.
	Opts Options
	A    *sparse.Matrix    // the original matrix
	Perm order.Permutation // total permutation (fill-reducing ∘ postorder)
	PA   *sparse.Matrix    // permuted matrix actually factored
	Sym  *symbolic.Structure
	BS   *blocks.Structure
	// PanelDepth is each panel's supernode depth in the elimination
	// forest (input to the Increasing Depth heuristic).
	PanelDepth []int
	// Exact holds nnz(L) and the operation count of the best sequential
	// factorization (pre-amalgamation); the paper's Tables 1/6 numbers
	// and the numerator of all Mflops figures.
	Exact etree.Stats
	// ValMap gathers original values into permuted positions:
	// PA.Val[q] == A.Val[ValMap[q]]. Refactorization applies it to route
	// fresh values onto the fixed pattern without re-permuting.
	ValMap []int
}

// NewPlan analyzes the matrix: ordering, postorder, symbolic factorization,
// amalgamation, and block partition.
func NewPlan(a *sparse.Matrix, opts Options) (*Plan, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid input matrix: %w", err)
	}
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultBlockSize
	}
	fillPerm, err := order.Compute(opts.Ordering, a, opts.GridDim)
	if err != nil {
		return nil, err
	}
	a1, err := a.Permute(fillPerm)
	if err != nil {
		return nil, err
	}
	po := etree.Build(a1).Postorder()
	perm := fillPerm.Compose(po)
	pa, vmap, err := a.PermuteWithMap(perm)
	if err != nil {
		return nil, err
	}
	amalg := symbolic.DefaultAmalgamation()
	if opts.Blocking == blocks.StrategyIrregular {
		// The irregular strategy's coarsening knob is the relative-fill
		// threshold; the panel widths then follow the merged supernodes.
		amalg = symbolic.RelativeAmalgamation(opts.AmalgThreshold)
	}
	if opts.Amalgamation != nil {
		amalg = *opts.Amalgamation
	}
	sym, err := symbolic.Analyze(pa, amalg)
	if err != nil {
		return nil, err
	}
	part, err := newPartition(sym, opts)
	if err != nil {
		return nil, err
	}
	bs, err := blocks.Build(sym, part)
	if err != nil {
		return nil, err
	}
	depth := make([]int, part.N())
	for p := range depth {
		depth[p] = sym.Depth[part.SnodeOf[p]]
	}
	return &Plan{
		Opts:       opts,
		A:          a,
		Perm:       perm,
		PA:         pa,
		Sym:        sym,
		BS:         bs,
		PanelDepth: depth,
		Exact:      etree.FactorStats(sym.ColCounts),
		ValMap:     vmap,
	}, nil
}

// newPartition dispatches on the blocking strategy. The staged and cycled
// variants exist for the paper's §5 variable-block-size experiments; their
// parameters are derived from BlockSize the way the experiment suite sets
// them (second width B/2, stage boundary at the matrix midpoint).
func newPartition(sym *symbolic.Structure, opts Options) (*blocks.Partition, error) {
	b := opts.BlockSize
	half := b / 2
	if half < 1 {
		half = 1
	}
	switch opts.Blocking {
	case blocks.StrategyUniform:
		return blocks.NewPartition(sym, b), nil
	case blocks.StrategyStaged:
		if sym.N < 2 {
			return blocks.NewPartition(sym, b), nil
		}
		return blocks.NewPartitionStaged(sym, b, half, sym.N/2)
	case blocks.StrategyCycled:
		return blocks.NewPartitionCycled(sym, []int{b, half})
	case blocks.StrategyIrregular:
		return blocks.NewPartitionIrregular(sym, blocks.IrregularConfig{MaxPanel: b})
	default:
		return nil, fmt.Errorf("core: unknown blocking strategy %d", opts.Blocking)
	}
}

// Map builds a Cartesian-product block mapping with the given row/column
// heuristics on the given processor grid.
func (p *Plan) Map(g mapping.Grid, rowH, colH mapping.Heuristic) *mapping.Mapping {
	return mapping.New(g, rowH, colH, p.BS, p.PanelDepth)
}

// Balances evaluates the paper's four load-balance measures for a mapping.
func (p *Plan) Balances(m *mapping.Mapping) loadbal.Balances {
	return loadbal.Compute(p.BS, m)
}

// Assign combines a 2-D mapping with (optionally) a domain/root split.
// domainBeta ≤ 0 disables domains; the paper's configuration corresponds to
// enabling them (≈2).
func (p *Plan) Assign(m *mapping.Mapping, domainBeta float64) sched.Assignment {
	a := sched.Assignment{Map: m}
	if domainBeta > 0 {
		a.Dom = domains.Select(p.Sym, p.BS, m.Grid.P(), domainBeta)
	}
	return a
}

// Factor runs the real parallel block fan-out factorization under the
// assignment and returns the numeric factor. The factor keeps the
// assignment's schedule and executor, so SolveParallel can reuse the data
// distribution and Refactor can re-run the factorization without any
// setup work.
func (p *Plan) Factor(a sched.Assignment) (*Factor, error) {
	return p.FactorContext(context.Background(), a)
}

// FactorContext is Factor with cancellation: the parallel factorization
// aborts early (returning ctx.Err()) if the context is cancelled.
func (p *Plan) FactorContext(ctx context.Context, a sched.Assignment) (*Factor, error) {
	nf, err := numeric.New(p.BS, p.PA)
	if err != nil {
		return nil, err
	}
	pr := sched.Build(p.BS, a)
	ex := fanout.NewExecutorMode(nf, pr, p.Opts.Exec)
	if _, err := ex.RunContext(ctx); err != nil {
		return nil, err
	}
	return &Factor{plan: p, nf: nf, pr: pr, ex: ex, a: p.A}, nil
}

// FactorTracedContext is FactorContext with the executor's span recorder
// attached and enabled: alongside the factor it returns the recorder
// holding one obs.Span per BFAC/BDIV/BMOD the run performed, ready for
// Chrome trace-event export. The instrumented run is the real execution,
// not a replay — the recorder's gated hot path is cheap enough to time
// production-shaped runs.
func (p *Plan) FactorTracedContext(ctx context.Context, a sched.Assignment) (*Factor, *obs.Recorder, error) {
	nf, err := numeric.New(p.BS, p.PA)
	if err != nil {
		return nil, nil, err
	}
	pr := sched.Build(p.BS, a)
	ex := fanout.NewExecutorMode(nf, pr, p.Opts.Exec)
	rec := ex.NewRecorder()
	rec.Enable()
	if _, err := ex.RunContext(ctx); err != nil {
		return nil, nil, err
	}
	return &Factor{plan: p, nf: nf, pr: pr, ex: ex, a: p.A}, rec, nil
}

// FactorMeasuredValuesContext is FactorValuesContext with a drop-free span
// recorder attached and enabled (fanout.Executor.NewMeasureRecorder): lanes
// are sized so every BFAC/BDIV/BMOD of the run is captured with
// Recorder.Dropped() == 0, the completeness internal/tune requires before
// it will aggregate the spans into a cost profile. It also returns the
// schedule the run executed under, which maps span block ids back to block
// coordinates.
func (p *Plan) FactorMeasuredValuesContext(ctx context.Context, a sched.Assignment, values []float64) (*Factor, *obs.Recorder, *sched.Program, error) {
	nf, err := numeric.New(p.BS, p.PA)
	if err != nil {
		return nil, nil, nil, err
	}
	pr := sched.Build(p.BS, a)
	ex := fanout.NewExecutorMode(nf, pr, p.Opts.Exec)
	rec := ex.NewMeasureRecorder()
	rec.Enable()
	f := &Factor{plan: p, nf: nf, pr: pr, ex: ex, a: p.A}
	if err := f.RefactorContext(ctx, values); err != nil {
		return nil, nil, nil, err
	}
	return f, rec, pr, nil
}

// FactorValuesContext is FactorContext for the analyze-once/factor-many
// serving path: it factors the plan's fixed pattern carrying values (laid
// out like A.Val, same CSC entry order) instead of the values the plan was
// analyzed from. A cached plan asked to factor a newly posted same-pattern
// matrix must use this — FactorContext would silently factor the stale
// values of whichever matrix originally built the plan.
func (p *Plan) FactorValuesContext(ctx context.Context, a sched.Assignment, values []float64) (*Factor, error) {
	nf, err := numeric.New(p.BS, p.PA)
	if err != nil {
		return nil, err
	}
	pr := sched.Build(p.BS, a)
	f := &Factor{plan: p, nf: nf, pr: pr, ex: fanout.NewExecutorMode(nf, pr, p.Opts.Exec), a: p.A}
	if err := f.RefactorContext(ctx, values); err != nil {
		return nil, err
	}
	return f, nil
}

// RestoreFactor rebuilds a computed Factor from snapshotted block data
// without re-running the factorization — the warm-start path of the
// durable factor store. values must be laid out like plan.A.Val (the
// matrix the snapshotted factor was computed from) and blocks must be the
// ExportBlocks flattening of the finished numeric factor. The restored
// factor carries the usual parallel executor, so later Refactor calls
// behave exactly as if the factor had been computed in this process.
func (p *Plan) RestoreFactor(a sched.Assignment, values []float64, blocks [][]float64) (*Factor, error) {
	if len(values) != len(p.A.Val) {
		return nil, fmt.Errorf("core: restore got %d values, pattern has %d nonzeros", len(values), len(p.A.Val))
	}
	nf, err := numeric.New(p.BS, p.PA)
	if err != nil {
		return nil, err
	}
	if err := nf.ImportBlocks(blocks); err != nil {
		return nil, err
	}
	pr := sched.Build(p.BS, a)
	f := &Factor{plan: p, nf: nf, pr: pr, ex: fanout.NewExecutorMode(nf, pr, p.Opts.Exec)}
	// The factor represents the snapshot's values, not whichever values
	// built the (possibly shared) plan matrix.
	f.a = &sparse.Matrix{
		N:      p.A.N,
		ColPtr: p.A.ColPtr,
		RowInd: p.A.RowInd,
		Val:    append([]float64(nil), values...),
	}
	return f, nil
}

// FactorSequential factors on one processor (the paper's t_seq baseline).
func (p *Plan) FactorSequential() (*Factor, error) {
	nf, err := numeric.New(p.BS, p.PA)
	if err != nil {
		return nil, err
	}
	if err := nf.FactorSequential(); err != nil {
		return nil, err
	}
	return &Factor{plan: p, nf: nf, a: p.A}, nil
}

// Refactor refactors f in place with new numeric values for the plan's
// fixed pattern. It is the analyze-once/factor-many entry point; see
// Factor.Refactor for the contract.
func (p *Plan) Refactor(f *Factor, values []float64) error {
	if f.plan != p {
		return fmt.Errorf("core: factor belongs to a different plan")
	}
	return f.Refactor(values)
}

// Simulate runs the discrete-event multicomputer simulation of the fan-out
// schedule under the assignment and machine model. The configuration must
// be valid (machine.Config.Validate); experiments and examples construct
// theirs from the fixed Paragon model, so an invalid one is a programming
// error and panics. Use SimulateChecked for externally-supplied configs.
func (p *Plan) Simulate(a sched.Assignment, cfg machine.Config) machine.Result {
	return machine.MustSimulate(sched.Build(p.BS, a), cfg)
}

// SimulateChecked is Simulate with the configuration error surfaced instead
// of panicking, for callers whose machine model comes from user input.
func (p *Plan) SimulateChecked(a sched.Assignment, cfg machine.Config) (machine.Result, error) {
	return machine.Simulate(sched.Build(p.BS, a), cfg)
}

// CriticalPath returns the critical-path time bound (seconds) under the
// machine model's per-op costs.
func (p *Plan) CriticalPath(cfg machine.Config) float64 {
	return critpath.Length(p.BS, cfg.FlopRate, cfg.OpOverhead)
}

// Factor is a computed Cholesky factor bound to its plan, able to solve
// linear systems in the original (unpermuted) index space. A Factor is
// safe for concurrent solves; Refactor must be externally serialized
// against solves (e.g. the server wraps factors in an RWMutex).
type Factor struct {
	plan *Plan
	nf   *numeric.Factor
	pr   *sched.Program   // non-nil when the factor was computed in parallel
	ex   *fanout.Executor // reusable parallel engine (nil for sequential factors)
	// a is the matrix this factor currently represents: plan.A after
	// Factor, a value-swapped view of the same pattern after Refactor.
	a *sparse.Matrix
	// pav is the reusable scratch holding values gathered into permuted
	// order; allocated on first Refactor, reused afterwards.
	pav []float64
}

// Numeric exposes the underlying block factor.
func (f *Factor) Numeric() *numeric.Factor { return f.nf }

// Plan exposes the plan the factor was computed from.
func (f *Factor) Plan() *Plan { return f.plan }

// Program returns the block-operation schedule the factor was computed
// under (block ids in recorded spans index into it).
func (f *Factor) Program() *sched.Program { return f.pr }

// Matrix returns the matrix the factor currently represents: the plan's
// matrix, or a same-pattern matrix carrying the values of the most recent
// Refactor.
func (f *Factor) Matrix() *sparse.Matrix { return f.a }

// Refactor recomputes the factor for new numeric values on the plan's
// fixed sparsity pattern. values must be laid out like plan.A.Val (same
// CSC entry order); every value must be finite. No ordering, symbolic
// analysis, or partitioning runs — the values are gathered through the
// plan's ValMap into the preallocated block storage and the factorization
// re-executes over the existing schedule, reusing the executor's
// workspaces. Parallel factors refactor in parallel; sequential ones
// sequentially.
func (f *Factor) Refactor(values []float64) error {
	return f.RefactorContext(context.Background(), values)
}

// RefactorContext is Refactor with cancellation. A cancelled refactor
// leaves the factor numerically invalid; a subsequent successful Refactor
// restores it.
func (f *Factor) RefactorContext(ctx context.Context, values []float64) error {
	if len(values) != len(f.plan.A.Val) {
		return fmt.Errorf("core: refactor got %d values, pattern has %d nonzeros", len(values), len(f.plan.A.Val))
	}
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: refactor value %d is not finite (%g)", i, v)
		}
	}
	// Keep f.a describing the current values without mutating the plan's
	// (possibly shared) matrix: first Refactor clones the pattern view with
	// private value storage, later ones overwrite it in place.
	if f.a == f.plan.A {
		f.a = &sparse.Matrix{
			N:      f.plan.A.N,
			ColPtr: f.plan.A.ColPtr,
			RowInd: f.plan.A.RowInd,
			Val:    make([]float64, len(values)),
		}
	}
	copy(f.a.Val, values)
	if f.pav == nil {
		f.pav = make([]float64, len(values))
	}
	for q, src := range f.plan.ValMap {
		f.pav[q] = values[src]
	}
	if err := f.nf.Reload(f.pav); err != nil {
		return err
	}
	if f.ex != nil {
		_, err := f.ex.RunContext(ctx)
		return err
	}
	return f.nf.FactorSequential()
}

// Perturbation configures the opt-in graceful-degradation mode for
// borderline-SPD matrices: when a factorization breaks down on a
// non-positive pivot, the diagonal is shifted (A + αI, the Manteuffel
// strategy) and the factorization retried with escalating α, a bounded
// number of times. The shift trades exactness for existence — the factor
// solves a nearby SPD problem — so callers must opt in and are told the α
// that was applied.
type Perturbation struct {
	// InitialShift is the first α relative to max |A_jj| (default 1e-8).
	InitialShift float64
	// Growth multiplies α between attempts (default 100).
	Growth float64
	// MaxAttempts bounds the retries (default 8, spanning relative shifts
	// from 1e-8 up to 1e6 under the default growth).
	MaxAttempts int
}

func (p Perturbation) withDefaults() Perturbation {
	if p.InitialShift <= 0 {
		p.InitialShift = 1e-8
	}
	if p.Growth <= 1 {
		p.Growth = 100
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	return p
}

// RefactorPerturbedContext is RefactorContext with the diagonal-perturbation
// retry. It returns the absolute shift α that was applied: 0 when the
// matrix factored unmodified, positive when a shifted A + αI was factored
// instead. Non-breakdown errors (cancellation, malformed values) are
// returned immediately without retrying.
func (f *Factor) RefactorPerturbedContext(ctx context.Context, values []float64, pert Perturbation) (float64, error) {
	err := f.RefactorContext(ctx, values)
	if err == nil {
		return 0, nil
	}
	if !errors.Is(err, kernels.ErrNotPositiveDefinite) {
		return 0, err
	}
	pert = pert.withDefaults()
	a := f.plan.A
	scale := 0.0
	for j := 0; j < a.N; j++ {
		if d := math.Abs(values[a.ColPtr[j]]); d > scale {
			scale = d
		}
	}
	if scale == 0 {
		scale = 1
	}
	shifted := append([]float64(nil), values...)
	alpha := pert.InitialShift * scale
	for attempt := 0; attempt < pert.MaxAttempts; attempt++ {
		for j := 0; j < a.N; j++ {
			q := a.ColPtr[j]
			shifted[q] = values[q] + alpha
		}
		if err = f.RefactorContext(ctx, shifted); err == nil {
			return alpha, nil
		}
		if !errors.Is(err, kernels.ErrNotPositiveDefinite) {
			return 0, err
		}
		alpha *= pert.Growth
	}
	return 0, fmt.Errorf("core: still not positive definite after %d diagonal perturbations (last shift %g): %w",
		pert.MaxAttempts, alpha/pert.Growth, err)
}

// FactorValuesPerturbedContext is FactorValuesContext with the
// diagonal-perturbation retry; it reports the applied shift alongside the
// factor.
func (p *Plan) FactorValuesPerturbedContext(ctx context.Context, a sched.Assignment, values []float64, pert Perturbation) (*Factor, float64, error) {
	nf, err := numeric.New(p.BS, p.PA)
	if err != nil {
		return nil, 0, err
	}
	pr := sched.Build(p.BS, a)
	f := &Factor{plan: p, nf: nf, pr: pr, ex: fanout.NewExecutorMode(nf, pr, p.Opts.Exec), a: p.A}
	shift, err := f.RefactorPerturbedContext(ctx, values, pert)
	if err != nil {
		return nil, 0, err
	}
	return f, shift, nil
}

// checkRHS validates one right-hand side: exact length and finite entries.
// The solve entry points call it so they are total functions — malformed
// service input yields an error, never a panic or silent NaN propagation.
func checkRHS(n int, b []float64) error {
	if len(b) != n {
		return fmt.Errorf("core: rhs length %d, want %d", len(b), n)
	}
	for i, v := range b {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: rhs entry %d is not finite (%g)", i, v)
		}
	}
	return nil
}

// Solve solves A·x = b for the original matrix A.
func (f *Factor) Solve(b []float64) ([]float64, error) {
	if err := checkRHS(f.plan.A.N, b); err != nil {
		return nil, err
	}
	pb := f.plan.Perm.Apply(b)
	px := f.nf.Solve(pb)
	return f.plan.Perm.ApplyInverse(px), nil
}

// SolveParallel solves A·x = b using the distributed triangular solves
// over the factorization's block ownership. The factor must have been
// computed with Plan.Factor (a parallel assignment).
func (f *Factor) SolveParallel(b []float64) ([]float64, error) {
	if f.pr == nil {
		return nil, fmt.Errorf("core: factor was computed sequentially; use Solve")
	}
	if err := checkRHS(f.plan.A.N, b); err != nil {
		return nil, err
	}
	pb := f.plan.Perm.Apply(b)
	px, err := fanout.Solve(f.nf, f.pr, pb)
	if err != nil {
		return nil, err
	}
	return f.plan.Perm.ApplyInverse(px), nil
}

// Residual returns ‖A·x − b‖∞ for a solution produced by Solve, measured
// against the matrix the factor currently represents.
func (f *Factor) Residual(x, b []float64) float64 {
	return f.a.ResidualNorm(x, b)
}
