// Package core is the public entry point of the library. It wires the
// substrates together into the paper's pipeline:
//
//	reorder (ND / minimum degree) → postorder → symbolic factorization
//	→ supernode amalgamation → block partition (B=48) → block mapping
//	→ {real parallel factorization | simulated multicomputer run}
//
// A Plan captures everything up to the block structure; mappings,
// factorizations, simulations, and analyses are derived from it.
package core

import (
	"fmt"

	"blockfanout/internal/blocks"
	"blockfanout/internal/critpath"
	"blockfanout/internal/domains"
	"blockfanout/internal/etree"
	"blockfanout/internal/fanout"
	"blockfanout/internal/loadbal"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
	"blockfanout/internal/numeric"
	"blockfanout/internal/order"
	"blockfanout/internal/sched"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

// DefaultBlockSize is the paper's block size B = 48.
const DefaultBlockSize = 48

// Options configure plan construction.
type Options struct {
	// BlockSize is the target panel width B (default 48).
	BlockSize int
	// Ordering selects the fill-reducing ordering (default MinDegree for
	// general matrices; use NDGrid2D/NDCube3D with GridDim for model
	// problems, or Natural for dense matrices).
	Ordering order.Method
	// GridDim is the grid side length for the geometric orderings.
	GridDim int
	// Amalgamation controls relaxed supernode merging; zero value means
	// symbolic.DefaultAmalgamation().
	Amalgamation *symbolic.AmalgamationConfig
}

// Plan is the analyzed, partitioned problem, ready to be mapped and
// factored.
type Plan struct {
	A    *sparse.Matrix    // the original matrix
	Perm order.Permutation // total permutation (fill-reducing ∘ postorder)
	PA   *sparse.Matrix    // permuted matrix actually factored
	Sym  *symbolic.Structure
	BS   *blocks.Structure
	// PanelDepth is each panel's supernode depth in the elimination
	// forest (input to the Increasing Depth heuristic).
	PanelDepth []int
	// Exact holds nnz(L) and the operation count of the best sequential
	// factorization (pre-amalgamation); the paper's Tables 1/6 numbers
	// and the numerator of all Mflops figures.
	Exact etree.Stats
}

// NewPlan analyzes the matrix: ordering, postorder, symbolic factorization,
// amalgamation, and block partition.
func NewPlan(a *sparse.Matrix, opts Options) (*Plan, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid input matrix: %w", err)
	}
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultBlockSize
	}
	fillPerm, err := order.Compute(opts.Ordering, a, opts.GridDim)
	if err != nil {
		return nil, err
	}
	a1, err := a.Permute(fillPerm)
	if err != nil {
		return nil, err
	}
	po := etree.Build(a1).Postorder()
	perm := fillPerm.Compose(po)
	pa, err := a.Permute(perm)
	if err != nil {
		return nil, err
	}
	amalg := symbolic.DefaultAmalgamation()
	if opts.Amalgamation != nil {
		amalg = *opts.Amalgamation
	}
	sym, err := symbolic.Analyze(pa, amalg)
	if err != nil {
		return nil, err
	}
	part := blocks.NewPartition(sym, opts.BlockSize)
	bs, err := blocks.Build(sym, part)
	if err != nil {
		return nil, err
	}
	depth := make([]int, part.N())
	for p := range depth {
		depth[p] = sym.Depth[part.SnodeOf[p]]
	}
	return &Plan{
		A:          a,
		Perm:       perm,
		PA:         pa,
		Sym:        sym,
		BS:         bs,
		PanelDepth: depth,
		Exact:      etree.FactorStats(sym.ColCounts),
	}, nil
}

// Map builds a Cartesian-product block mapping with the given row/column
// heuristics on the given processor grid.
func (p *Plan) Map(g mapping.Grid, rowH, colH mapping.Heuristic) *mapping.Mapping {
	return mapping.New(g, rowH, colH, p.BS, p.PanelDepth)
}

// Balances evaluates the paper's four load-balance measures for a mapping.
func (p *Plan) Balances(m *mapping.Mapping) loadbal.Balances {
	return loadbal.Compute(p.BS, m)
}

// Assign combines a 2-D mapping with (optionally) a domain/root split.
// domainBeta ≤ 0 disables domains; the paper's configuration corresponds to
// enabling them (≈2).
func (p *Plan) Assign(m *mapping.Mapping, domainBeta float64) sched.Assignment {
	a := sched.Assignment{Map: m}
	if domainBeta > 0 {
		a.Dom = domains.Select(p.Sym, p.BS, m.Grid.P(), domainBeta)
	}
	return a
}

// Factor runs the real parallel block fan-out factorization under the
// assignment and returns the numeric factor. The factor keeps the
// assignment's schedule, so SolveParallel can reuse the data distribution.
func (p *Plan) Factor(a sched.Assignment) (*Factor, error) {
	nf, err := numeric.New(p.BS, p.PA)
	if err != nil {
		return nil, err
	}
	pr := sched.Build(p.BS, a)
	if _, err := fanout.Run(nf, pr); err != nil {
		return nil, err
	}
	return &Factor{plan: p, nf: nf, pr: pr}, nil
}

// FactorSequential factors on one processor (the paper's t_seq baseline).
func (p *Plan) FactorSequential() (*Factor, error) {
	nf, err := numeric.New(p.BS, p.PA)
	if err != nil {
		return nil, err
	}
	if err := nf.FactorSequential(); err != nil {
		return nil, err
	}
	return &Factor{plan: p, nf: nf}, nil
}

// Simulate runs the discrete-event multicomputer simulation of the fan-out
// schedule under the assignment and machine model.
func (p *Plan) Simulate(a sched.Assignment, cfg machine.Config) machine.Result {
	return machine.Simulate(sched.Build(p.BS, a), cfg)
}

// CriticalPath returns the critical-path time bound (seconds) under the
// machine model's per-op costs.
func (p *Plan) CriticalPath(cfg machine.Config) float64 {
	return critpath.Length(p.BS, cfg.FlopRate, cfg.OpOverhead)
}

// Factor is a computed Cholesky factor bound to its plan, able to solve
// linear systems in the original (unpermuted) index space.
type Factor struct {
	plan *Plan
	nf   *numeric.Factor
	pr   *sched.Program // non-nil when the factor was computed in parallel
}

// Numeric exposes the underlying block factor.
func (f *Factor) Numeric() *numeric.Factor { return f.nf }

// Plan exposes the plan the factor was computed from.
func (f *Factor) Plan() *Plan { return f.plan }

// Solve solves A·x = b for the original matrix A.
func (f *Factor) Solve(b []float64) ([]float64, error) {
	if len(b) != f.plan.A.N {
		return nil, fmt.Errorf("core: rhs length %d, want %d", len(b), f.plan.A.N)
	}
	pb := f.plan.Perm.Apply(b)
	px := f.nf.Solve(pb)
	return f.plan.Perm.ApplyInverse(px), nil
}

// SolveParallel solves A·x = b using the distributed triangular solves
// over the factorization's block ownership. The factor must have been
// computed with Plan.Factor (a parallel assignment).
func (f *Factor) SolveParallel(b []float64) ([]float64, error) {
	if f.pr == nil {
		return nil, fmt.Errorf("core: factor was computed sequentially; use Solve")
	}
	if len(b) != f.plan.A.N {
		return nil, fmt.Errorf("core: rhs length %d, want %d", len(b), f.plan.A.N)
	}
	pb := f.plan.Perm.Apply(b)
	px, err := fanout.Solve(f.nf, f.pr, pb)
	if err != nil {
		return nil, err
	}
	return f.plan.Perm.ApplyInverse(px), nil
}

// Residual returns ‖A·x − b‖∞ for a solution produced by Solve.
func (f *Factor) Residual(x, b []float64) float64 {
	return f.plan.A.ResidualNorm(x, b)
}
