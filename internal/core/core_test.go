package core

import (
	"math"
	"testing"

	"blockfanout/internal/gen"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

func TestNewPlanDefaults(t *testing.T) {
	m := gen.IrregularMesh(150, 5, 3, 2)
	plan, err := NewPlan(m, Options{Ordering: ord.MinDegree})
	if err != nil {
		t.Fatal(err)
	}
	if plan.BS.Part.B != DefaultBlockSize {
		t.Fatalf("default block size %d", plan.BS.Part.B)
	}
	if err := plan.Perm.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.Exact.N != m.N {
		t.Fatal("stats dimension")
	}
	if len(plan.PanelDepth) != plan.BS.N() {
		t.Fatal("panel depth length")
	}
}

func TestNewPlanRejectsInvalid(t *testing.T) {
	bad := &sparse.Matrix{N: 2, ColPtr: []int{0, 1}, RowInd: []int{0}, Val: []float64{1}}
	if _, err := NewPlan(bad, Options{}); err == nil {
		t.Fatal("invalid matrix accepted")
	}
	m := gen.Grid2D(5)
	if _, err := NewPlan(m, Options{Ordering: ord.NDGrid2D, GridDim: 4}); err == nil {
		t.Fatal("grid dim mismatch accepted")
	}
}

func TestPlanPermutedMatrixEquivalent(t *testing.T) {
	m := gen.Grid2D(8)
	plan, err := NewPlan(m, Options{Ordering: ord.NDGrid2D, GridDim: 8, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// PA(i,j) == A(perm[i], perm[j]) for sampled entries.
	for i := 0; i < m.N; i += 7 {
		for j := 0; j <= i; j += 5 {
			if plan.PA.At(i, j) != m.At(plan.Perm[i], plan.Perm[j]) {
				t.Fatalf("PA(%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestEndToEndSolveUnpermuted(t *testing.T) {
	m := gen.IrregularMesh(180, 5, 3, 77)
	plan, err := NewPlan(m, Options{Ordering: ord.MinDegree, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	f, err := plan.FactorSequential()
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64((i*3)%11) - 5
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	// Residual against the ORIGINAL matrix (checks permutation plumbing).
	if r := m.ResidualNorm(x, b); r > 1e-8 {
		t.Fatalf("residual %g", r)
	}
	if r := f.Residual(x, b); r > 1e-8 {
		t.Fatalf("Residual() %g", r)
	}
	if _, err := f.Solve(b[:5]); err == nil {
		t.Fatal("short rhs accepted")
	}
	if f.Numeric() == nil {
		t.Fatal("Numeric accessor nil")
	}
}

func TestParallelFactorViaCore(t *testing.T) {
	m := gen.Cube3D(6)
	plan, err := NewPlan(m, Options{Ordering: ord.NDCube3D, GridDim: 6, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	g := mapping.Grid{Pr: 2, Pc: 2}
	mp := plan.Map(g, mapping.DW, mapping.CY)
	f, err := plan.Factor(plan.Assign(mp, 2))
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m.N)
	for i := range b {
		b[i] = 1
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := m.ResidualNorm(x, b); r > 1e-8 {
		t.Fatalf("residual %g", r)
	}
}

func TestBalancesAndSimulateAgree(t *testing.T) {
	m := gen.IrregularMesh(250, 5, 3, 5)
	plan, err := NewPlan(m, Options{Ordering: ord.MinDegree, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	g := mapping.Grid{Pr: 4, Pc: 4}
	cy := mapping.Cyclic(g, plan.BS.N())
	he := plan.Map(g, mapping.ID, mapping.CY)
	balCY := plan.Balances(cy)
	balHE := plan.Balances(he)
	if balHE.Overall <= balCY.Overall {
		t.Fatalf("heuristic balance %g not above cyclic %g", balHE.Overall, balCY.Overall)
	}
	cfg := machine.Paragon()
	resCY := plan.Simulate(plan.Assign(cy, 0), cfg)
	resHE := plan.Simulate(plan.Assign(he, 0), cfg)
	// Without domains, efficiency is bounded by overall balance.
	if resCY.Efficiency() > balCY.Overall+1e-9 {
		t.Fatalf("cyclic efficiency %g exceeds balance bound %g", resCY.Efficiency(), balCY.Overall)
	}
	if resHE.Time >= resCY.Time {
		t.Fatalf("heuristic mapping not faster: %g vs %g", resHE.Time, resCY.Time)
	}
	if cp := plan.CriticalPath(cfg); cp > resHE.Time+1e-12 {
		t.Fatalf("critical path %g above simulated time %g", cp, resHE.Time)
	}
}

func TestCustomAmalgamation(t *testing.T) {
	m := gen.IrregularMesh(200, 5, 3, 50)
	na := symbolic.NoAmalgamation()
	exact, err := NewPlan(m, Options{Ordering: ord.MinDegree, BlockSize: 8, Amalgamation: &na})
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := NewPlan(m, Options{Ordering: ord.MinDegree, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(relaxed.Sym.Snodes) >= len(exact.Sym.Snodes) {
		t.Fatal("default amalgamation did not merge")
	}
	// Exact stats are identical regardless of amalgamation.
	if exact.Exact != relaxed.Exact {
		t.Fatalf("exact stats changed by amalgamation: %+v vs %+v", exact.Exact, relaxed.Exact)
	}
}

func TestSequentialAndParallelSameSolution(t *testing.T) {
	m := gen.NormalEq(120, 4, 2, 10, 8)
	plan, err := NewPlan(m, Options{Ordering: ord.MinDegree, BlockSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m.N)
	for i := range b {
		b[i] = math.Cos(float64(i))
	}
	fs, err := plan.FactorSequential()
	if err != nil {
		t.Fatal(err)
	}
	xs, _ := fs.Solve(b)
	g := mapping.Grid{Pr: 3, Pc: 2}
	fp, err := plan.Factor(plan.Assign(plan.Map(g, mapping.DN, mapping.IN), 2))
	if err != nil {
		t.Fatal(err)
	}
	xp, _ := fp.Solve(b)
	for i := range xs {
		if math.Abs(xs[i]-xp[i]) > 1e-7*(1+math.Abs(xs[i])) {
			t.Fatalf("solutions differ at %d", i)
		}
	}
}

func TestSolveParallel(t *testing.T) {
	m := gen.IrregularMesh(220, 5, 3, 12)
	plan, err := NewPlan(m, Options{Ordering: ord.MinDegree, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	g := mapping.Grid{Pr: 2, Pc: 2}
	f, err := plan.Factor(plan.Assign(plan.Map(g, mapping.DW, mapping.CY), 2))
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(i%9) - 4
	}
	xp, err := f.SolveParallel(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := m.ResidualNorm(xp, b); r > 1e-8 {
		t.Fatalf("parallel solve residual %g", r)
	}
	xs, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if math.Abs(xs[i]-xp[i]) > 1e-8*(1+math.Abs(xs[i])) {
			t.Fatalf("parallel vs sequential solve differ at %d", i)
		}
	}
	if _, err := f.SolveParallel(b[:3]); err == nil {
		t.Fatal("short rhs accepted")
	}
	seq, err := plan.FactorSequential()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.SolveParallel(b); err == nil {
		t.Fatal("sequential factor allowed SolveParallel")
	}
}
