package core

import "fmt"

// SolveMany solves A·x = b for several right-hand sides in one batched
// sweep over the factor (see numeric.SolveN), returning one solution per
// input. Every right-hand side is validated (length, finiteness) before
// any work runs, so a malformed vector in a batch fails the whole call
// cleanly instead of corrupting its neighbours' shared sweep.
func (f *Factor) SolveMany(bs [][]float64) ([][]float64, error) {
	for i, b := range bs {
		if err := checkRHS(f.plan.A.N, b); err != nil {
			return nil, fmt.Errorf("rhs %d: %w", i, err)
		}
	}
	pbs := make([][]float64, len(bs))
	for i, b := range bs {
		pbs[i] = f.plan.Perm.Apply(b)
	}
	pxs := f.nf.SolveN(pbs)
	xs := make([][]float64, len(bs))
	for i := range pxs {
		xs[i] = f.plan.Perm.ApplyInverse(pxs[i])
	}
	return xs, nil
}

// SolveRefined solves A·x = b and then applies iterative refinement
// (x ← x + A⁻¹(b − A·x)) until the residual's infinity norm drops below tol
// or maxIter refinement steps have run. It returns the solution, the number
// of refinement steps actually taken, and the final residual norm.
// Refinement recovers accuracy lost to round-off in the factorization,
// which matters for ill-conditioned systems.
func (f *Factor) SolveRefined(b []float64, maxIter int, tol float64) (x []float64, iters int, resid float64, err error) {
	if maxIter < 0 {
		return nil, 0, 0, fmt.Errorf("core: negative refinement iteration count %d", maxIter)
	}
	x, err = f.Solve(b)
	if err != nil {
		return nil, 0, 0, err
	}
	a := f.a
	for iters = 0; iters < maxIter; iters++ {
		ax := a.MulVec(x)
		r := make([]float64, len(b))
		worst := 0.0
		for i := range r {
			r[i] = b[i] - ax[i]
			if d := r[i]; d < 0 {
				d = -d
				if d > worst {
					worst = d
				}
			} else if d > worst {
				worst = d
			}
		}
		resid = worst
		if worst <= tol {
			return x, iters, resid, nil
		}
		dx, err2 := f.Solve(r)
		if err2 != nil {
			return nil, iters, resid, err2
		}
		for i := range x {
			x[i] += dx[i]
		}
	}
	resid = a.ResidualNorm(x, b)
	return x, iters, resid, nil
}
