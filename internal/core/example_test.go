package core_test

import (
	"fmt"

	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	"blockfanout/internal/order"
)

// Example demonstrates the full pipeline: analyze a sparse SPD matrix,
// compare the cyclic mapping's load balance with the paper's heuristic,
// factor in parallel, and solve.
func Example() {
	a := gen.Grid2D(32) // 5-point Laplacian, n=1024
	plan, err := core.NewPlan(a, core.Options{
		Ordering: order.NDGrid2D, GridDim: 32, BlockSize: 16,
	})
	if err != nil {
		panic(err)
	}

	g := mapping.Grid{Pr: 2, Pc: 2}
	cyclic := mapping.Cyclic(g, plan.BS.N())
	heur := plan.Map(g, mapping.ID, mapping.CY)
	fmt.Printf("balance improves: %v\n",
		plan.Balances(heur).Overall > plan.Balances(cyclic).Overall)

	f, err := plan.Factor(plan.Assign(heur, 2))
	if err != nil {
		panic(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	x, err := f.Solve(b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("solved: residual below 1e-10: %v\n", f.Residual(x, b) < 1e-10)
	// Output:
	// balance improves: true
	// solved: residual below 1e-10: true
}

// ExampleFactor_SolveRefined shows iterative refinement driving the
// residual to machine precision.
func ExampleFactor_SolveRefined() {
	a := gen.IrregularMesh(500, 6, 3, 11)
	plan, err := core.NewPlan(a, core.Options{Ordering: order.MinDegree, BlockSize: 16})
	if err != nil {
		panic(err)
	}
	f, err := plan.FactorSequential()
	if err != nil {
		panic(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = float64(i % 3)
	}
	_, _, resid, err := f.SolveRefined(b, 4, 1e-12)
	if err != nil {
		panic(err)
	}
	fmt.Printf("refined residual below 1e-12: %v\n", resid < 1e-12)
	// Output:
	// refined residual below 1e-12: true
}
