package core

import (
	"math"
	"testing"

	"blockfanout/internal/gen"
	ord "blockfanout/internal/order"
)

func refinedFixture(t *testing.T) *Factor {
	t.Helper()
	m := gen.IrregularMesh(150, 5, 3, 4)
	plan, err := NewPlan(m, Options{Ordering: ord.MinDegree, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	f, err := plan.FactorSequential()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSolveMany(t *testing.T) {
	f := refinedFixture(t)
	n := f.plan.A.N
	bs := make([][]float64, 3)
	for k := range bs {
		bs[k] = make([]float64, n)
		for i := range bs[k] {
			bs[k][i] = float64((i + k) % 7)
		}
	}
	xs, err := f.SolveMany(bs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range xs {
		if r := f.Residual(xs[k], bs[k]); r > 1e-8 {
			t.Fatalf("rhs %d residual %g", k, r)
		}
	}
	if _, err := f.SolveMany([][]float64{make([]float64, 3)}); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestSolveRefinedConverges(t *testing.T) {
	f := refinedFixture(t)
	n := f.plan.A.N
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.7)
	}
	x, iters, resid, err := f.SolveRefined(b, 5, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if resid > 1e-12 {
		t.Fatalf("refined residual %g after %d iters", resid, iters)
	}
	if r := f.Residual(x, b); r > 1e-12 {
		t.Fatalf("verification residual %g", r)
	}
}

func TestSolveRefinedZeroIters(t *testing.T) {
	f := refinedFixture(t)
	b := make([]float64, f.plan.A.N)
	b[0] = 1
	// A loose tolerance should be met immediately (0 refinement steps).
	_, iters, _, err := f.SolveRefined(b, 8, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if iters != 0 {
		t.Fatalf("took %d refinement steps for loose tolerance", iters)
	}
}
