package sparse

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// tiny builds the 4×4 SPD matrix
//
//	[ 4 -1  0 -1]
//	[-1  4 -1  0]
//	[ 0 -1  4 -1]
//	[-1  0 -1  4]
func tiny(t *testing.T) *Matrix {
	t.Helper()
	m, err := FromTriplets(4, []Triplet{
		{0, 0, 4}, {1, 1, 4}, {2, 2, 4}, {3, 3, 4},
		{1, 0, -1}, {2, 1, -1}, {3, 2, -1}, {3, 0, -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFromTripletsBasics(t *testing.T) {
	m := tiny(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 8 {
		t.Fatalf("nnz=%d, want 8", m.NNZ())
	}
	if got := m.At(0, 0); got != 4 {
		t.Fatalf("A(0,0)=%g", got)
	}
	if got := m.At(0, 1); got != -1 {
		t.Fatalf("A(0,1)=%g (symmetric access)", got)
	}
	if got := m.At(2, 0); got != 0 {
		t.Fatalf("A(2,0)=%g, want 0", got)
	}
}

func TestFromTripletsUpperMirrored(t *testing.T) {
	// Entries supplied in the upper triangle must land in the lower.
	m, err := FromTriplets(3, []Triplet{
		{0, 0, 2}, {1, 1, 2}, {2, 2, 2},
		{0, 2, -1}, // upper triangle input
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(2, 0); got != -1 {
		t.Fatalf("A(2,0)=%g, want -1", got)
	}
}

func TestFromTripletsDuplicatesSummed(t *testing.T) {
	m, err := FromTriplets(2, []Triplet{
		{0, 0, 1}, {0, 0, 2}, {1, 1, 3}, {1, 0, -1}, {0, 1, -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 0); got != 3 {
		t.Fatalf("duplicate diag sum %g, want 3", got)
	}
	if got := m.At(1, 0); got != -2 {
		t.Fatalf("duplicate offdiag sum %g, want -2", got)
	}
}

func TestFromTripletsOutOfRange(t *testing.T) {
	if _, err := FromTriplets(2, []Triplet{{2, 0, 1}}); err == nil {
		t.Fatal("expected error for out-of-range triplet")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := tiny(t)
	m.RowInd[1], m.RowInd[2] = m.RowInd[2], m.RowInd[1]
	if err := m.Validate(); err == nil {
		t.Fatal("expected unsorted-rows error")
	}
}

func TestValidateMissingDiagonal(t *testing.T) {
	m := &Matrix{N: 2, ColPtr: []int{0, 1, 2}, RowInd: []int{1, 1}, Val: []float64{1, 1}}
	if err := m.Validate(); err == nil {
		t.Fatal("expected missing-diagonal error")
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	m := tiny(t)
	d := m.Dense()
	x := []float64{1, 2, -3, 0.5}
	y := m.MulVec(x)
	for i := 0; i < m.N; i++ {
		var want float64
		for j := 0; j < m.N; j++ {
			want += d[i][j] * x[j]
		}
		if math.Abs(y[i]-want) > 1e-14 {
			t.Fatalf("y[%d]=%g, want %g", i, y[i], want)
		}
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	m := tiny(t)
	perm := []int{2, 0, 3, 1}
	b, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got, want := b.At(i, j), m.At(perm[i], perm[j]); got != want {
				t.Fatalf("B(%d,%d)=%g, want A(%d,%d)=%g", i, j, got, perm[i], perm[j], want)
			}
		}
	}
	// Permuting back with the inverse must restore A exactly.
	inv := make([]int, 4)
	for n, o := range perm {
		inv[o] = n
	}
	c, err := b.Permute(inv)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.ColPtr, m.ColPtr) || !reflect.DeepEqual(c.RowInd, m.RowInd) {
		t.Fatal("structure not restored by inverse permutation")
	}
	for p := range c.Val {
		if c.Val[p] != m.Val[p] {
			t.Fatalf("value %d not restored", p)
		}
	}
}

func TestPermuteRejectsBad(t *testing.T) {
	m := tiny(t)
	if _, err := m.Permute([]int{0, 1, 2}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := m.Permute([]int{0, 0, 1, 2}); err == nil {
		t.Fatal("expected duplicate error")
	}
	if _, err := m.Permute([]int{0, 1, 2, 4}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestPatternOf(t *testing.T) {
	m := tiny(t)
	p := PatternOf(m)
	if p.NEdges() != 4 {
		t.Fatalf("edges=%d, want 4", p.NEdges())
	}
	wantAdj := map[int][]int{
		0: {1, 3}, 1: {0, 2}, 2: {1, 3}, 3: {0, 2},
	}
	for v, want := range wantAdj {
		if got := p.Adj(v); !reflect.DeepEqual(got, want) {
			t.Fatalf("adj(%d)=%v, want %v", v, got, want)
		}
		if p.Degree(v) != len(want) {
			t.Fatalf("degree(%d)=%d", v, p.Degree(v))
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	m := tiny(t)
	c := m.Clone()
	c.Val[0] = 99
	if m.Val[0] == 99 {
		t.Fatal("clone shares storage")
	}
}

func TestDiag(t *testing.T) {
	m := tiny(t)
	d := m.Diag()
	for i, v := range d {
		if v != 4 {
			t.Fatalf("diag[%d]=%g", i, v)
		}
	}
}

func TestResidualNorm(t *testing.T) {
	m := tiny(t)
	x := []float64{1, 1, 1, 1}
	b := m.MulVec(x)
	if r := m.ResidualNorm(x, b); r != 0 {
		t.Fatalf("residual %g, want 0", r)
	}
	b[0] += 0.5
	if r := m.ResidualNorm(x, b); math.Abs(r-0.5) > 1e-15 {
		t.Fatalf("residual %g, want 0.5", r)
	}
}

// Property: for random sparse SPD-patterned matrices, PatternOf is an
// involution partner of the lower triangle — rebuilding a matrix from the
// pattern's lower edges reproduces the structure.
func TestQuickPermuteSymmetryPreserved(t *testing.T) {
	f := func(seed uint8, permSeed uint8) bool {
		n := 6 + int(seed%7)
		var ts []Triplet
		for i := 0; i < n; i++ {
			ts = append(ts, Triplet{i, i, 10})
		}
		s := int(seed)
		for i := 1; i < n; i++ {
			j := (i*7 + s) % i
			ts = append(ts, Triplet{i, j, -1})
		}
		m, err := FromTriplets(n, ts)
		if err != nil {
			return false
		}
		// Random-ish permutation by repeated swapping.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		ps := int(permSeed) + 1
		for i := n - 1; i > 0; i-- {
			j := (i*ps + 3) % (i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		b, err := m.Permute(perm)
		if err != nil {
			return false
		}
		if b.Validate() != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if b.At(i, j) != m.At(perm[i], perm[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
