// Package sparse provides the symmetric sparse matrix representations used
// throughout the library.
//
// Two views of a symmetric matrix are used:
//
//   - Matrix: the numeric lower triangle (including the diagonal) in
//     compressed sparse column (CSC) form. This is the input to symbolic and
//     numeric factorization.
//   - Pattern: the full symmetric adjacency structure (both triangles, no
//     diagonal). This is the input to fill-reducing ordering algorithms,
//     which operate on the graph of the matrix.
//
// Row indices within each column are kept sorted ascending; all constructors
// and transformations preserve this invariant.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Matrix is a symmetric positive definite matrix stored as its lower
// triangle (diagonal included) in compressed sparse column form.
// Column j occupies Val[ColPtr[j]:ColPtr[j+1]] with row indices
// RowInd[ColPtr[j]:ColPtr[j+1]] sorted ascending; the first entry of every
// column is the diagonal.
type Matrix struct {
	N      int
	ColPtr []int
	RowInd []int
	Val    []float64
}

// NNZ returns the number of stored entries (lower triangle incl. diagonal).
func (m *Matrix) NNZ() int { return len(m.RowInd) }

// Validate checks the structural invariants of the matrix and returns a
// descriptive error on the first violation.
func (m *Matrix) Validate() error {
	if m.N < 0 {
		return fmt.Errorf("sparse: negative dimension %d", m.N)
	}
	if len(m.ColPtr) != m.N+1 {
		return fmt.Errorf("sparse: len(ColPtr)=%d, want %d", len(m.ColPtr), m.N+1)
	}
	if len(m.RowInd) != len(m.Val) {
		return fmt.Errorf("sparse: len(RowInd)=%d != len(Val)=%d", len(m.RowInd), len(m.Val))
	}
	if m.ColPtr[0] != 0 || m.ColPtr[m.N] != len(m.RowInd) {
		return fmt.Errorf("sparse: ColPtr bounds [%d,%d], want [0,%d]", m.ColPtr[0], m.ColPtr[m.N], len(m.RowInd))
	}
	for j := 0; j < m.N; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		if lo > hi {
			return fmt.Errorf("sparse: column %d has negative length", j)
		}
		// The endpoint check above pins ColPtr[0] and ColPtr[N] only;
		// interior pointers from untrusted input can still stray outside
		// RowInd, which would turn the scans below into panics.
		if lo < 0 || hi > len(m.RowInd) {
			return fmt.Errorf("sparse: column %d pointers [%d,%d] outside nonzeros [0,%d]", j, lo, hi, len(m.RowInd))
		}
		if lo == hi || m.RowInd[lo] != j {
			return fmt.Errorf("sparse: column %d missing diagonal entry", j)
		}
		for p := lo; p < hi; p++ {
			r := m.RowInd[p]
			if r < j || r >= m.N {
				return fmt.Errorf("sparse: column %d row %d out of range", j, r)
			}
			if p > lo && m.RowInd[p-1] >= r {
				return fmt.Errorf("sparse: column %d rows not strictly increasing at %d", j, p)
			}
		}
	}
	return nil
}

// FNV-1a 64-bit constants (hash/fnv duplicated here to keep the hot,
// allocation-free loop inlined over raw ints instead of byte slices).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one integer (as 8 little-endian bytes) into an FNV-1a state.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// PatternHash returns an FNV-1a hash of the matrix's sparsity structure —
// the dimension, column pointers, and row indices. Values are deliberately
// excluded: two matrices with the same pattern but different numeric
// entries hash equal, which is exactly the key a plan cache wants
// (analysis and block partitioning depend only on structure, so a cached
// Plan can be refactored with new values). The hash allocates nothing.
func (m *Matrix) PatternHash() uint64 {
	h := fnvMix(uint64(fnvOffset64), uint64(m.N))
	for _, p := range m.ColPtr {
		h = fnvMix(h, uint64(p))
	}
	for _, r := range m.RowInd {
		h = fnvMix(h, uint64(r))
	}
	return h
}

// SamePattern reports whether m and o have identical sparsity structure.
// It is the exact check behind PatternHash's probabilistic one, used to
// rule out hash collisions before reusing a cached analysis.
func (m *Matrix) SamePattern(o *Matrix) bool {
	if m.N != o.N || len(m.RowInd) != len(o.RowInd) {
		return false
	}
	for j := 0; j <= m.N; j++ {
		if m.ColPtr[j] != o.ColPtr[j] {
			return false
		}
	}
	for p, r := range m.RowInd {
		if o.RowInd[p] != r {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{
		N:      m.N,
		ColPtr: append([]int(nil), m.ColPtr...),
		RowInd: append([]int(nil), m.RowInd...),
		Val:    append([]float64(nil), m.Val...),
	}
	return c
}

// Diag returns a copy of the diagonal.
func (m *Matrix) Diag() []float64 {
	d := make([]float64, m.N)
	for j := 0; j < m.N; j++ {
		d[j] = m.Val[m.ColPtr[j]]
	}
	return d
}

// At returns A(i,j). Both orderings of (i,j) are accepted; the lookup is a
// binary search within the column of min(i,j).
func (m *Matrix) At(i, j int) float64 {
	if i < j {
		i, j = j, i
	}
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	rows := m.RowInd[lo:hi]
	k := sort.SearchInts(rows, i)
	if k < len(rows) && rows[k] == i {
		return m.Val[lo+k]
	}
	return 0
}

// MulVec computes y = A·x for the full symmetric matrix (both triangles).
func (m *Matrix) MulVec(x []float64) []float64 {
	y := make([]float64, m.N)
	for j := 0; j < m.N; j++ {
		xj := x[j]
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			i := m.RowInd[p]
			v := m.Val[p]
			y[i] += v * xj
			if i != j {
				y[j] += v * x[i]
			}
		}
	}
	return y
}

// Pattern is the adjacency structure of a symmetric matrix: for each column
// j, the sorted row indices of off-diagonal nonzeros in BOTH triangles
// (i.e. the graph neighbourhood of vertex j). The diagonal is excluded.
type Pattern struct {
	N      int
	ColPtr []int
	RowInd []int
}

// Degree returns the number of neighbours of vertex j.
func (p *Pattern) Degree(j int) int { return p.ColPtr[j+1] - p.ColPtr[j] }

// Adj returns the (sorted) neighbour list of vertex j. The returned slice
// aliases the pattern's storage and must not be modified.
func (p *Pattern) Adj(j int) []int { return p.RowInd[p.ColPtr[j]:p.ColPtr[j+1]] }

// NEdges returns the number of undirected edges.
func (p *Pattern) NEdges() int { return len(p.RowInd) / 2 }

// PatternOf builds the full symmetric adjacency structure from the lower
// triangle of m.
func PatternOf(m *Matrix) *Pattern {
	n := m.N
	deg := make([]int, n)
	for j := 0; j < n; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			i := m.RowInd[p]
			if i != j {
				deg[i]++
				deg[j]++
			}
		}
	}
	ptr := make([]int, n+1)
	for j := 0; j < n; j++ {
		ptr[j+1] = ptr[j] + deg[j]
	}
	ind := make([]int, ptr[n])
	next := append([]int(nil), ptr[:n]...)
	for j := 0; j < n; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			i := m.RowInd[p]
			if i != j {
				ind[next[j]] = i
				next[j]++
				ind[next[i]] = j
				next[i]++
			}
		}
	}
	// Row indices are appended in increasing column order for the upper
	// part and increasing row order for the lower part; each adjacency
	// list is already sorted because columns are visited in order and
	// each column's rows are sorted. Verify cheaply in debug builds via
	// tests; sort defensively here only if needed.
	for j := 0; j < n; j++ {
		adj := ind[ptr[j]:ptr[j+1]]
		if !sort.IntsAreSorted(adj) {
			sort.Ints(adj)
		}
	}
	return &Pattern{N: n, ColPtr: ptr, RowInd: ind}
}

// Triplet is a single (row, col, value) entry used during assembly.
type Triplet struct {
	Row, Col int
	Val      float64
}

// FromTriplets assembles a symmetric matrix from lower-or-upper triangle
// triplets. Duplicate entries are summed. Entries are mirrored into the
// lower triangle; diagonal entries absent from the input are created with
// value zero so the CSC invariant (explicit diagonal) holds.
func FromTriplets(n int, ts []Triplet) (*Matrix, error) {
	type key struct{ r, c int }
	acc := make(map[key]float64, len(ts)+n)
	for _, t := range ts {
		r, c := t.Row, t.Col
		if r < 0 || r >= n || c < 0 || c >= n {
			return nil, fmt.Errorf("sparse: triplet (%d,%d) out of range for n=%d", r, c, n)
		}
		if r < c {
			r, c = c, r
		}
		acc[key{r, c}] += t.Val
	}
	for j := 0; j < n; j++ {
		if _, ok := acc[key{j, j}]; !ok {
			acc[key{j, j}] = 0
		}
	}
	counts := make([]int, n+1)
	for k := range acc {
		counts[k.c+1]++
	}
	for j := 0; j < n; j++ {
		counts[j+1] += counts[j]
	}
	m := &Matrix{
		N:      n,
		ColPtr: counts,
		RowInd: make([]int, len(acc)),
		Val:    make([]float64, len(acc)),
	}
	next := append([]int(nil), counts[:n]...)
	for k, v := range acc {
		p := next[k.c]
		next[k.c]++
		m.RowInd[p] = k.r
		m.Val[p] = v
	}
	// Sort each column's (row, val) pairs by row.
	for j := 0; j < n; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		rows, vals := m.RowInd[lo:hi], m.Val[lo:hi]
		sort.Sort(&rowValSort{rows, vals})
	}
	return m, nil
}

type rowValSort struct {
	rows []int
	vals []float64
}

func (s *rowValSort) Len() int           { return len(s.rows) }
func (s *rowValSort) Less(i, j int) bool { return s.rows[i] < s.rows[j] }
func (s *rowValSort) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// Permute computes the symmetric permutation B = P·A·Pᵀ where perm[new] =
// old, i.e. B(i,j) = A(perm[i], perm[j]). The result is again a sorted
// lower-triangular CSC matrix.
func (m *Matrix) Permute(perm []int) (*Matrix, error) {
	b, _, err := m.permute(perm, false)
	return b, err
}

// PermuteWithMap is Permute plus a value map: vmap[q] is the position in
// m.Val whose entry landed at position q of the result, i.e.
// B.Val[q] == m.Val[vmap[q]]. The map lets callers re-permute fresh numeric
// values onto a fixed pattern without redoing the symbolic permutation —
// the refactorization path applies it as a gather.
func (m *Matrix) PermuteWithMap(perm []int) (*Matrix, []int, error) {
	return m.permute(perm, true)
}

func (m *Matrix) permute(perm []int, withMap bool) (*Matrix, []int, error) {
	n := m.N
	if len(perm) != n {
		return nil, nil, fmt.Errorf("sparse: permutation length %d for n=%d", len(perm), n)
	}
	inv := make([]int, n)
	seen := make([]bool, n)
	for newIdx, old := range perm {
		if old < 0 || old >= n || seen[old] {
			return nil, nil, fmt.Errorf("sparse: invalid permutation at position %d", newIdx)
		}
		seen[old] = true
		inv[old] = newIdx
	}
	counts := make([]int, n+1)
	for j := 0; j < n; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			i := m.RowInd[p]
			ni, nj := inv[i], inv[j]
			if ni < nj {
				ni, nj = nj, ni
			}
			counts[nj+1]++
		}
	}
	for j := 0; j < n; j++ {
		counts[j+1] += counts[j]
	}
	b := &Matrix{
		N:      n,
		ColPtr: counts,
		RowInd: make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	var vmap []int
	if withMap {
		vmap = make([]int, m.NNZ())
	}
	next := append([]int(nil), counts[:n]...)
	for j := 0; j < n; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			i := m.RowInd[p]
			ni, nj := inv[i], inv[j]
			if ni < nj {
				ni, nj = nj, ni
			}
			q := next[nj]
			next[nj]++
			b.RowInd[q] = ni
			b.Val[q] = m.Val[p]
			if withMap {
				vmap[q] = p
			}
		}
	}
	for j := 0; j < n; j++ {
		lo, hi := b.ColPtr[j], b.ColPtr[j+1]
		if withMap {
			sort.Sort(&rowValMapSort{b.RowInd[lo:hi], b.Val[lo:hi], vmap[lo:hi]})
		} else {
			sort.Sort(&rowValSort{b.RowInd[lo:hi], b.Val[lo:hi]})
		}
	}
	return b, vmap, nil
}

// rowValMapSort co-sorts (rows, vals, vmap) by row.
type rowValMapSort struct {
	rows []int
	vals []float64
	vmap []int
}

func (s *rowValMapSort) Len() int           { return len(s.rows) }
func (s *rowValMapSort) Less(i, j int) bool { return s.rows[i] < s.rows[j] }
func (s *rowValMapSort) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
	s.vmap[i], s.vmap[j] = s.vmap[j], s.vmap[i]
}

// ResidualNorm returns ‖A·x − b‖∞, a convergence check for solvers.
func (m *Matrix) ResidualNorm(x, b []float64) float64 {
	ax := m.MulVec(x)
	worst := 0.0
	for i := range ax {
		if d := math.Abs(ax[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// Dense expands the full symmetric matrix into a row-major n×n dense
// matrix. Intended for tests and tiny reference computations only.
func (m *Matrix) Dense() [][]float64 {
	d := make([][]float64, m.N)
	for i := range d {
		d[i] = make([]float64, m.N)
	}
	for j := 0; j < m.N; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			i := m.RowInd[p]
			d[i][j] = m.Val[p]
			d[j][i] = m.Val[p]
		}
	}
	return d
}
