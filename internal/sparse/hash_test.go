package sparse

import "testing"

// tridiag builds an n×n tridiagonal SPD matrix with the given off-diagonal
// value (structure is independent of the value).
func tridiag(n int, off float64) *Matrix {
	var ts []Triplet
	for i := 0; i < n; i++ {
		ts = append(ts, Triplet{Row: i, Col: i, Val: 4})
		if i > 0 {
			ts = append(ts, Triplet{Row: i, Col: i - 1, Val: off})
		}
	}
	m, err := FromTriplets(n, ts)
	if err != nil {
		panic(err)
	}
	return m
}

func TestPatternHashValueIndependent(t *testing.T) {
	a := tridiag(40, -1)
	b := tridiag(40, -0.25)
	if !a.SamePattern(b) {
		t.Fatal("fixtures should share a pattern")
	}
	if a.PatternHash() != b.PatternHash() {
		t.Fatalf("same pattern, different values: hashes differ (%#x vs %#x)",
			a.PatternHash(), b.PatternHash())
	}
	// Scaling values in place must not move the hash either.
	c := a.Clone()
	for i := range c.Val {
		c.Val[i] *= 3.5
	}
	if a.PatternHash() != c.PatternHash() {
		t.Fatal("value scaling changed the pattern hash")
	}
}

func TestPatternHashStructureSensitive(t *testing.T) {
	base := tridiag(40, -1)
	h := base.PatternHash()

	// Different dimension.
	if tridiag(41, -1).PatternHash() == h {
		t.Fatal("n=41 collided with n=40")
	}

	// Same n, one extra off-diagonal entry.
	perturbed := tridiag(40, -1)
	ts := []Triplet{{Row: 17, Col: 3, Val: -1}}
	for j := 0; j < perturbed.N; j++ {
		for p := perturbed.ColPtr[j]; p < perturbed.ColPtr[j+1]; p++ {
			ts = append(ts, Triplet{Row: perturbed.RowInd[p], Col: j, Val: perturbed.Val[p]})
		}
	}
	p2, err := FromTriplets(40, ts)
	if err != nil {
		t.Fatal(err)
	}
	if p2.PatternHash() == h {
		t.Fatal("extra entry did not change the pattern hash")
	}
	if base.SamePattern(p2) {
		t.Fatal("SamePattern missed a structural difference")
	}

	// Same entry count, different placement.
	shifted := tridiag(40, -1)
	var ts2 []Triplet
	for j := 0; j < shifted.N; j++ {
		for p := shifted.ColPtr[j]; p < shifted.ColPtr[j+1]; p++ {
			i := shifted.RowInd[p]
			if i == j+1 && j == 10 {
				i = j + 2 // move one subdiagonal entry down a row
			}
			ts2 = append(ts2, Triplet{Row: i, Col: j, Val: shifted.Val[p]})
		}
	}
	s2, err := FromTriplets(40, ts2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NNZ() != base.NNZ() {
		t.Fatalf("fixture bug: nnz %d != %d", s2.NNZ(), base.NNZ())
	}
	if s2.PatternHash() == h {
		t.Fatal("moved entry did not change the pattern hash")
	}
}

func TestPatternHashAllocs(t *testing.T) {
	m := tridiag(100, -1)
	if avg := testing.AllocsPerRun(10, func() { m.PatternHash() }); avg != 0 {
		t.Fatalf("PatternHash allocated %.1f times per call; want 0", avg)
	}
}

func TestPermuteWithMap(t *testing.T) {
	m := tridiag(12, -1)
	perm := make([]int, m.N)
	for i := range perm {
		perm[i] = (i*5 + 3) % m.N // 5 is coprime with 12
	}
	pm, vmap, err := m.PermuteWithMap(perm)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if !pm.SamePattern(ref) {
		t.Fatal("PermuteWithMap pattern differs from Permute")
	}
	if len(vmap) != m.NNZ() {
		t.Fatalf("vmap length %d, want %d", len(vmap), m.NNZ())
	}
	for q := range pm.Val {
		if pm.Val[q] != m.Val[vmap[q]] {
			t.Fatalf("vmap[%d]=%d: permuted value %g != source value %g",
				q, vmap[q], pm.Val[q], m.Val[vmap[q]])
		}
		if pm.Val[q] != ref.Val[q] {
			t.Fatalf("value mismatch vs Permute at %d", q)
		}
	}
	// The map is a bijection over nonzero positions.
	hit := make([]bool, m.NNZ())
	for _, p := range vmap {
		if hit[p] {
			t.Fatalf("vmap maps position %d twice", p)
		}
		hit[p] = true
	}
}
