package commvol

import (
	"testing"

	"blockfanout/internal/blocks"
	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sched"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

func structureFor(t *testing.T, m *sparse.Matrix, method ord.Method, gridDim, b int) (*symbolic.Structure, *blocks.Structure) {
	t.Helper()
	p, err := ord.Compute(method, m, gridDim)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	po := etree.Build(m1).Postorder()
	m2, err := m1.Permute(po)
	if err != nil {
		t.Fatal(err)
	}
	st, err := symbolic.Analyze(m2, symbolic.DefaultAmalgamation())
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blocks.Build(st, blocks.NewPartition(st, b))
	if err != nil {
		t.Fatal(err)
	}
	return st, bs
}

func TestSingleProcessorZero(t *testing.T) {
	st, bs := structureFor(t, gen.Grid2D(14), ord.NDGrid2D, 14, 4)
	if v := Cyclic2D(bs, 1); v.Bytes != 0 || v.Messages != 0 {
		t.Fatalf("P=1 2-D volume %+v", v)
	}
	if v := Column1D(st, 1); v.Bytes != 0 || v.Messages != 0 {
		t.Fatalf("P=1 1-D volume %+v", v)
	}
	if v := Block1D(bs, 1); v.Bytes != 0 {
		t.Fatalf("P=1 block-1-D volume %+v", v)
	}
}

func TestColumn1DGrowsWithP(t *testing.T) {
	st, _ := structureFor(t, gen.Grid2D(24), ord.NDGrid2D, 24, 4)
	prev := int64(0)
	for _, p := range []int{2, 4, 8, 16, 32} {
		v := Column1D(st, p)
		if v.Bytes < prev {
			t.Fatalf("1-D volume not monotone at P=%d: %d < %d", p, v.Bytes, prev)
		}
		prev = v.Bytes
	}
}

func TestTwoDGrowsSlowerThanOneD(t *testing.T) {
	// The paper's scalability claim: going from P to 4P should roughly
	// quadruple... rather, the 1-D/2-D ratio must grow with P.
	st, bs := structureFor(t, gen.Grid2D(28), ord.NDGrid2D, 28, 4)
	r16 := float64(Column1D(st, 16).Bytes) / float64(Cyclic2D(bs, 16).Bytes)
	r64 := float64(Column1D(st, 64).Bytes) / float64(Cyclic2D(bs, 64).Bytes)
	if r64 <= r16 {
		t.Fatalf("1-D/2-D ratio not growing: %g at 16, %g at 64", r16, r64)
	}
	if r64 <= 1 {
		t.Fatalf("1-D not worse than 2-D at P=64 (ratio %g)", r64)
	}
}

func TestOfMatchesSchedProgram(t *testing.T) {
	_, bs := structureFor(t, gen.IrregularMesh(200, 5, 3, 10), ord.MinDegree, 0, 8)
	g := mapping.Grid{Pr: 3, Pc: 3}
	a := sched.Assignment{Map: mapping.Cyclic(g, bs.N())}
	v := Of(bs, a)
	pr := sched.Build(bs, a)
	if v.Bytes != pr.TotalBytes || v.Messages != pr.TotalMessages {
		t.Fatalf("Of %+v != program %d/%d", v, pr.TotalMessages, pr.TotalBytes)
	}
}

func TestSubcubeReducesVolume(t *testing.T) {
	st, bs := structureFor(t, gen.Grid2D(24), ord.NDGrid2D, 24, 4)
	g := mapping.Grid{Pr: 4, Pc: 4}
	depth := make([]int, bs.N())
	for p := range depth {
		depth[p] = st.Depth[bs.Part.SnodeOf[p]]
	}
	heur := mapping.New(g, mapping.ID, mapping.CY, bs, depth)
	sub := mapping.Compose(g, mapping.ID, mapping.SubcubeColumns(st, bs, g.Pc), bs, depth)
	vh := Of(bs, sched.Assignment{Map: heur})
	vs := Of(bs, sched.Assignment{Map: sub})
	if vs.Bytes >= vh.Bytes {
		t.Fatalf("subcube volume %d not below heuristic %d", vs.Bytes, vh.Bytes)
	}
}
