// Package commvol measures interprocessor communication volume for
// block-to-processor assignments. It backs the paper's introductory claim
// that 1-D column mappings have communication volume growing linearly in P
// while 2-D block mappings grow as √P, and the §5 measurement that the
// subtree-to-subcube column mapping cuts volume by up to ~30%.
package commvol

import (
	"blockfanout/internal/blocks"
	"blockfanout/internal/mapping"
	"blockfanout/internal/sched"
	"blockfanout/internal/symbolic"
)

// Volume holds communication totals for one assignment.
type Volume struct {
	Messages int64
	Bytes    int64
}

// Of measures the remote traffic of an assignment (each completed block is
// sent once to every remote processor that consumes it — the fan-out rule).
func Of(bs *blocks.Structure, a sched.Assignment) Volume {
	pr := sched.Build(bs, a)
	return Volume{Messages: pr.TotalMessages, Bytes: pr.TotalBytes}
}

// Cyclic2D measures the traffic of the 2-D cyclic mapping on the most
// nearly square grid for p processors.
func Cyclic2D(bs *blocks.Structure, p int) Volume {
	g := mapping.BestGrid(p)
	return Of(bs, sched.Assignment{Map: mapping.Cyclic(g, bs.N())})
}

// Block1D measures the traffic of a 1-D cyclic block-column mapping on p
// processors: block (I,J) is owned by processor J mod p, i.e. a degenerate
// 1×p Cartesian grid running the block fan-out protocol.
func Block1D(bs *blocks.Structure, p int) Volume {
	g := mapping.Grid{Pr: 1, Pc: p}
	return Of(bs, sched.Assignment{Map: mapping.Cyclic(g, bs.N())})
}

// Column1D measures the traffic of the traditional column-oriented fan-out
// method on p processors with a cyclic column mapping — the paper's 1-D
// baseline whose communication volume grows linearly in P [George, Liu &
// Ng]. Each completed factor column j is sent to every distinct processor
// owning a column that j updates, i.e. the owners of the row indices of
// L(:,j); the message carries the column's nonzeros.
func Column1D(st *symbolic.Structure, p int) Volume {
	var v Volume
	mark := make([]int, p)
	for i := range mark {
		mark[i] = -1
	}
	gen := 0
	for s, sn := range st.Snodes {
		rows := st.Rows[s]
		w := sn.Width
		for t := 0; t < w; t++ {
			me := (sn.First + t) % p
			gen++
			mark[me] = gen // updates kept on the owner are not messages
			consumers := 0
			colLen := (w - 1 - t) + len(rows)
			for u := t + 1; u < w; u++ {
				if q := (sn.First + u) % p; mark[q] != gen {
					mark[q] = gen
					consumers++
				}
			}
			for _, r := range rows {
				if q := r % p; mark[q] != gen {
					mark[q] = gen
					consumers++
				}
			}
			v.Messages += int64(consumers)
			v.Bytes += int64(consumers) * int64(colLen+1) * 8
		}
	}
	return v
}
