// Package tune closes the feedback loop between measurement and mapping:
// it aggregates the per-block BFAC/BDIV/BMOD spans an obs.Recorder captured
// during a real factorization into a CostProfile of measured nanoseconds
// per block, then rebuilds the block→processor mapping from those measured
// costs instead of the modeled flop counts the §4 heuristics use
// (mapping.NewMeasured: greedy number partitioning plus a rectilinear-style
// alternating refinement). Measured costs fold in everything the flop
// model cannot see — cache behaviour of irregular panels, BMOD traffic,
// per-core throughput differences — which is why remap-after-measure beats
// every static heuristic on the irregular generators (the Yaşar et al. and
// Tzovas & Predari observation, applied to the paper's mappings).
//
// A profile is only trustworthy if the recording is complete: a recorder
// that dropped spans under-represents whatever ran late, so BuildProfile
// refuses truncated recordings outright (ErrTruncated). Use
// fanout.Executor.NewMeasureRecorder (via core.Plan.
// FactorMeasuredValuesContext) to get lanes sized so drops cannot happen.
package tune

import (
	"errors"
	"fmt"
	"sort"

	"blockfanout/internal/mapping"
	"blockfanout/internal/obs"
	"blockfanout/internal/sched"
	"blockfanout/internal/store"
)

// ErrTruncated reports a recording that dropped spans: the span set is
// biased toward early operations and must not become a cost signal.
var ErrTruncated = errors.New("tune: recording dropped spans; refusing to build a biased cost profile")

// CostProfile is the measured cost of one factorization of one pattern:
// Cost[i][j] holds the total nanoseconds of compute spans attributed to
// block (i,j) — its own BFAC/BDIV plus every BMOD that targeted it — and
// zero for blocks outside the structure.
type CostProfile struct {
	PatternHash uint64 // pattern the measurement ran on
	ConfigKey   uint64 // static plan-configuration key it was analyzed under
	Procs       int    // parallel width of the measured run
	N           int    // block grid dimension (panels per side)
	Cost        [][]int64
}

// BuildProfile aggregates a recorder's spans against the schedule they were
// recorded under. It fails with ErrTruncated if the recorder dropped any
// span, and errors if no compute spans were recorded at all (a disabled or
// never-run recorder).
func BuildProfile(rec *obs.Recorder, pr *sched.Program, patternHash, cfgKey uint64) (*CostProfile, error) {
	if rec == nil {
		return nil, errors.New("tune: nil recorder")
	}
	if rec.Dropped() > 0 {
		return nil, fmt.Errorf("%w (%d dropped)", ErrTruncated, rec.Dropped())
	}
	n := pr.BS.N()
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
	}
	var total int64
	for _, s := range rec.Spans() {
		switch s.Op {
		case obs.OpBFAC, obs.OpBDIV, obs.OpBMOD:
		default:
			continue // steal/idle bookkeeping is not block cost
		}
		id := s.Block
		j := pr.ColOf[id]
		i := pr.BS.Cols[j].Blocks[pr.IdxOf[id]].I
		d := s.End - s.Start
		if d <= 0 {
			// Sub-resolution span: charge one tick so the block still
			// registers as having work at all.
			d = 1
		}
		cost[i][j] += d
		total += d
	}
	if total == 0 {
		return nil, errors.New("tune: recorder holds no compute spans")
	}
	return &CostProfile{
		PatternHash: patternHash,
		ConfigKey:   cfgKey,
		Procs:       rec.Procs(),
		N:           n,
		Cost:        cost,
	}, nil
}

// Fingerprint digests the profile (FNV-1a over keys, dimensions, and every
// nonzero cost with its coordinates). It feeds core.Options.MapFingerprint
// so plans tuned from different measurements can never alias in the plan
// cache or the snapshot store.
func (p *CostProfile) Fingerprint() uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(p.PatternHash)
	mix(p.ConfigKey)
	mix(uint64(p.Procs))
	mix(uint64(p.N))
	for i := range p.Cost {
		for j, c := range p.Cost[i] {
			if c != 0 {
				mix(uint64(i))
				mix(uint64(j))
				mix(uint64(c))
			}
		}
	}
	return h
}

// Remap rebuilds the block→processor mapping from the profile's measured
// costs on the given grid. Deterministic: two calls with equal profiles
// and grids return identical mappings.
func Remap(p *CostProfile, g mapping.Grid) *mapping.Mapping {
	return mapping.NewMeasured(g, p.Cost)
}

// PredictedLoads sums the profile's measured block costs by owning
// processor under an ownership function — the predicted per-processor
// compute time if the same work re-ran under that ownership.
func (p *CostProfile) PredictedLoads(owner func(i, j int) int, procs int) []int64 {
	loads := make([]int64, procs)
	for i := range p.Cost {
		for j, c := range p.Cost[i] {
			if c != 0 {
				loads[owner(i, j)] += c
			}
		}
	}
	return loads
}

// Balance is the paper's overall balance measure over a load vector:
// total/(P·max), 1.0 meaning perfectly even.
func Balance(loads []int64) float64 {
	var total, mx int64
	for _, l := range loads {
		total += l
		if l > mx {
			mx = l
		}
	}
	if mx == 0 {
		return 0
	}
	return float64(total) / (float64(len(loads)) * float64(mx))
}

// GridCandidates returns up to max candidate Pr×Pc shapes for p
// processors, most nearly square first (both orientations of each factor
// pair), in a deterministic order. It bounds the auto-search: for highly
// composite p the full divisor set is large, but shapes far from square
// are never competitive for a 2-D block mapping.
func GridCandidates(p, max int) []mapping.Grid {
	var grids []mapping.Grid
	for c := 1; c*c <= p; c++ {
		if p%c == 0 {
			grids = append(grids, mapping.Grid{Pr: p / c, Pc: c})
			if c != p/c {
				grids = append(grids, mapping.Grid{Pr: c, Pc: p / c})
			}
		}
	}
	sort.SliceStable(grids, func(a, b int) bool {
		da, db := grids[a].Pr-grids[a].Pc, grids[b].Pr-grids[b].Pc
		if da < 0 {
			da = -da
		}
		if db < 0 {
			db = -db
		}
		if da != db {
			return da < db
		}
		return grids[a].Pr > grids[b].Pr // taller orientation first on ties
	})
	if max > 0 && len(grids) > max {
		grids = grids[:max]
	}
	return grids
}

// MaxGridCandidates bounds the Pr×Pc auto-search on first factorization.
const MaxGridCandidates = 6

// Search evaluates candidate grid shapes for procs processors against the
// profile and returns the tuned mapping with the smallest predicted
// makespan (max per-processor measured load), together with that makespan.
// Ties keep the earlier — more square — candidate, so the result is
// deterministic.
func Search(p *CostProfile, procs int) (*mapping.Mapping, int64) {
	var best *mapping.Mapping
	var bestMax int64
	for _, g := range GridCandidates(procs, MaxGridCandidates) {
		m := Remap(p, g)
		loads := p.PredictedLoads(m.Owner, procs)
		var mx int64
		for _, l := range loads {
			if l > mx {
				mx = l
			}
		}
		if best == nil || mx < bestMax {
			best, bestMax = m, mx
		}
	}
	return best, bestMax
}

// Snapshot converts the profile to its durable store representation
// (sparse coordinate triples; block cost matrices are mostly zero).
func (p *CostProfile) Snapshot() *store.ProfileSnapshot {
	ps := &store.ProfileSnapshot{
		PatternHash: p.PatternHash,
		ConfigKey:   p.ConfigKey,
		Procs:       p.Procs,
		N:           p.N,
	}
	for i := range p.Cost {
		for j, c := range p.Cost[i] {
			if c != 0 {
				ps.I = append(ps.I, i)
				ps.J = append(ps.J, j)
				ps.Cost = append(ps.Cost, c)
			}
		}
	}
	return ps
}

// FromSnapshot rebuilds a profile from its store representation,
// validating coordinates so a corrupted snapshot cannot index out of
// range.
func FromSnapshot(ps *store.ProfileSnapshot) (*CostProfile, error) {
	if ps.N <= 0 || ps.Procs <= 0 {
		return nil, fmt.Errorf("tune: profile snapshot has n=%d procs=%d", ps.N, ps.Procs)
	}
	if len(ps.I) != len(ps.J) || len(ps.I) != len(ps.Cost) {
		return nil, fmt.Errorf("tune: profile snapshot has %d/%d/%d coordinate arrays", len(ps.I), len(ps.J), len(ps.Cost))
	}
	p := &CostProfile{
		PatternHash: ps.PatternHash,
		ConfigKey:   ps.ConfigKey,
		Procs:       ps.Procs,
		N:           ps.N,
		Cost:        make([][]int64, ps.N),
	}
	for i := range p.Cost {
		p.Cost[i] = make([]int64, ps.N)
	}
	for k := range ps.I {
		i, j := ps.I[k], ps.J[k]
		if i < 0 || i >= ps.N || j < 0 || j >= ps.N {
			return nil, fmt.Errorf("tune: profile snapshot coordinate (%d,%d) outside %d×%d", i, j, ps.N, ps.N)
		}
		p.Cost[i][j] = ps.Cost[k]
	}
	return p, nil
}
