package tune_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	"blockfanout/internal/obs"
	"blockfanout/internal/order"
	"blockfanout/internal/store"
	"blockfanout/internal/tune"
)

// measuredProfile runs one real measured factorization of a small
// irregular mesh and aggregates it into a profile.
func measuredProfile(t *testing.T, procs int) (*core.Plan, *tune.CostProfile) {
	t.Helper()
	m := gen.IrregularMesh(420, 8, 3, 7)
	plan, err := core.NewPlan(m, core.Options{Ordering: order.MinDegree, BlockSize: 12})
	if err != nil {
		t.Fatal(err)
	}
	g := mapping.BestGrid(procs)
	a := plan.Assign(plan.Map(g, mapping.ID, mapping.CY), 2)
	_, rec, pr, err := plan.FactorMeasuredValuesContext(context.Background(), a, plan.A.Val)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("measure recorder dropped %d spans; NewMeasureRecorder must size lanes drop-free", rec.Dropped())
	}
	prof, err := tune.BuildProfile(rec, pr, m.PatternHash(), plan.Opts.ConfigKey())
	if err != nil {
		t.Fatal(err)
	}
	return plan, prof
}

// TestBuildProfileRefusesTruncated is the regression test for biased
// profiles: a recorder that overflowed its lanes under-represents late
// operations, and BuildProfile must refuse it with ErrTruncated instead
// of quietly producing a skewed cost signal (the old behaviour, when
// drops were not even counted).
func TestBuildProfileRefusesTruncated(t *testing.T) {
	rec := obs.NewRecorder(1, 2)
	rec.Enable()
	for k := 0; k < 5; k++ {
		rec.Record(0, obs.OpBFAC, int32(k), -1, rec.Start())
	}
	if rec.Dropped() == 0 {
		t.Fatal("recorder did not overflow; test needs a truncated recording")
	}
	_, err := tune.BuildProfile(rec, nil, 1, 2)
	if !errors.Is(err, tune.ErrTruncated) {
		t.Fatalf("BuildProfile on truncated recording: err = %v, want ErrTruncated", err)
	}
}

// TestSearchDeterministic is the remap determinism requirement: two remap
// searches from the same CostProfile must return identical mappings, so a
// tuned plan is reproducible from its persisted profile (warm start,
// gateway propagation) and never silently diverges between participants.
func TestSearchDeterministic(t *testing.T) {
	for _, procs := range []int{8, 12} {
		_, prof := measuredProfile(t, procs)
		m1, mk1 := tune.Search(prof, procs)
		m2, mk2 := tune.Search(prof, procs)
		if m1 == nil {
			t.Fatal("Search returned no mapping")
		}
		if mk1 != mk2 || !reflect.DeepEqual(m1, m2) {
			t.Fatalf("P=%d: two searches from one profile disagree: makespan %d vs %d, maps equal=%v",
				procs, mk1, mk2, reflect.DeepEqual(m1, m2))
		}
		// And through the durable representation: snapshot → restore →
		// search must reproduce the same mapping bit-for-bit.
		prof2, err := tune.FromSnapshot(prof.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		m3, _ := tune.Search(prof2, procs)
		if !reflect.DeepEqual(m1, m3) {
			t.Fatalf("P=%d: search after snapshot round-trip diverges", procs)
		}
	}
}

// TestSearchImprovesPredictedBalance: the tuned mapping's balance over
// the measured costs must be at least the serving default's — the
// adoption criterion the server applies.
func TestSearchImprovesPredictedBalance(t *testing.T) {
	const procs = 8
	plan, prof := measuredProfile(t, procs)
	g := mapping.BestGrid(procs)
	static := plan.Assign(plan.Map(g, mapping.ID, mapping.CY), 2)
	tm, _ := tune.Search(prof, procs)
	staticBal := tune.Balance(prof.PredictedLoads(static.Owner, procs))
	tunedBal := tune.Balance(prof.PredictedLoads(plan.Assign(tm, 0).Owner, procs))
	if tunedBal < staticBal {
		t.Fatalf("tuned predicted balance %.3f below static %.3f", tunedBal, staticBal)
	}
}

// TestTunedFactorMatchesStatic: a factorization under the tuned mapping
// must produce the same factor as the static mapping (ownership moves
// work, never changes results).
func TestTunedFactorMatchesStatic(t *testing.T) {
	const procs = 8
	plan, prof := measuredProfile(t, procs)
	tm, _ := tune.Search(prof, procs)
	seq, err := plan.FactorSequential()
	if err != nil {
		t.Fatal(err)
	}
	f, err := plan.FactorValuesContext(context.Background(), plan.Assign(tm, 0), plan.A.Val)
	if err != nil {
		t.Fatal(err)
	}
	sd, pd := seq.Numeric().Data, f.Numeric().Data
	for j := range sd {
		for bi := range sd[j] {
			for k, v := range sd[j][bi] {
				w := pd[j][bi][k]
				diff := v - w
				if diff < 0 {
					diff = -diff
				}
				lim := 1e-12
				if v < 0 {
					lim *= 1 - v
				} else {
					lim *= 1 + v
				}
				if diff > lim {
					t.Fatalf("tuned factor diverges at column %d block %d entry %d: %g vs %g", j, bi, k, w, v)
				}
			}
		}
	}
}

// TestFromSnapshotRejectsCorrupt: a corrupted persisted profile must be
// rejected, not index out of range.
func TestFromSnapshotRejectsCorrupt(t *testing.T) {
	bad := []*store.ProfileSnapshot{
		{N: 0, Procs: 4},
		{N: 4, Procs: 0},
		{N: 4, Procs: 4, I: []int{1}, J: []int{1}},                        // missing cost
		{N: 4, Procs: 4, I: []int{4}, J: []int{0}, Cost: []int64{1}},      // i out of range
		{N: 4, Procs: 4, I: []int{0}, J: []int{-1}, Cost: []int64{1}},     // j out of range
	}
	for i, ps := range bad {
		if _, err := tune.FromSnapshot(ps); err == nil {
			t.Fatalf("case %d: corrupt snapshot accepted", i)
		}
	}
}

// TestFingerprintSensitive: profiles differing in any cost must have
// different fingerprints (the plan-cache aliasing guard).
func TestFingerprintSensitive(t *testing.T) {
	_, prof := measuredProfile(t, 8)
	fp := prof.Fingerprint()
	if fp2 := prof.Fingerprint(); fp2 != fp {
		t.Fatalf("fingerprint not deterministic: %x vs %x", fp, fp2)
	}
	// Perturb one nonzero cost.
	perturbed := false
outer:
	for i := range prof.Cost {
		for j, c := range prof.Cost[i] {
			if c != 0 {
				prof.Cost[i][j] = c + 1
				perturbed = true
				break outer
			}
		}
	}
	if !perturbed {
		t.Fatal("profile has no nonzero cost")
	}
	if prof.Fingerprint() == fp {
		t.Fatal("fingerprint unchanged after cost perturbation")
	}
}

// TestGridCandidatesShapes: candidates cover both orientations, stay
// within the requested bound, and multiply out to exactly p.
func TestGridCandidatesShapes(t *testing.T) {
	for _, p := range []int{1, 6, 8, 16, 24} {
		grids := tune.GridCandidates(p, tune.MaxGridCandidates)
		if len(grids) == 0 || len(grids) > tune.MaxGridCandidates {
			t.Fatalf("p=%d: %d candidates", p, len(grids))
		}
		for _, g := range grids {
			if g.P() != p {
				t.Fatalf("p=%d: candidate %dx%d covers %d procs", p, g.Pr, g.Pc, g.P())
			}
		}
	}
}
