// Package admission is the multi-tenant admission-control and
// overload-degradation layer shared by the solve server and the cluster
// gateway. The paper balances *supply* — blocks spread over processors so
// no processor idles; this package balances *demand* — requests spread over
// tenants so no tenant starves the others when the offered load exceeds
// what the machine can factor.
//
// It replaces a flat FIFO worker semaphore with four cooperating pieces:
//
//   - per-tenant identity (the X-Tenant header upstream; "default"
//     otherwise) with token-bucket rate limits and concurrent-work quotas,
//     so one tenant's flood is rejected at its own quota instead of
//     consuming the shared queue;
//   - a weighted priority queue over three classes — interactive solves >
//     numeric refactorizations > cold factorizations — drained by weighted
//     round-robin so low classes are heavily de-prioritized under load but
//     never absolutely starved, and round-robined across tenants within a
//     class so arrival order cannot become tenant priority;
//   - deadline-aware scheduling: a request whose remaining deadline budget
//     can no longer cover its cost estimate (modeled flops through an
//     observed-throughput EWMA) is shed with a structured rejection instead
//     of silently burning its deadline in the queue and then timing out on
//     a worker;
//   - a brownout state machine (ok → shed-low-priority → reject-new-factors
//     → drain) driven by queue depth and heap watermarks, so overload
//     degrades the cheapest work first and the service never falls over a
//     memory cliff with every cached factor lost.
//
// Every rejection carries an HTTP status, a stable error code, and a
// Retry-After hint, so clients and load balancers can back off instead of
// hammering a saturated service.
package admission

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"blockfanout/internal/faultinject"
)

// Priority is a request's scheduling class. Lower values are more urgent.
type Priority uint8

const (
	// Interactive is the latency-sensitive class: solves against a live
	// factor, where a human or a control loop is waiting on the answer.
	Interactive Priority = iota
	// Refactor is a numeric-only refactorization of a live factor: heavier
	// than a solve, but bounded and cache-warm.
	Refactor
	// Cold is a cold factorization — ordering, symbolic analysis, first
	// numeric factorization. The most expensive class and the first shed
	// under overload.
	Cold

	numPriorities
)

func (p Priority) String() string {
	switch p {
	case Interactive:
		return "interactive"
	case Refactor:
		return "refactor"
	case Cold:
		return "cold"
	}
	return fmt.Sprintf("Priority(%d)", uint8(p))
}

// classWeights is the weighted-round-robin drain ratio across priority
// classes when several have waiters: for every 8 interactive grants the
// scheduler lets through at most 3 refactors and 1 cold factorization, so
// cold work is heavily de-prioritized under load but can never be starved
// outright by a sustained interactive stream.
var classWeights = [numPriorities]int{8, 3, 1}

// State is the brownout state machine's position. States escalate in
// order; each one degrades strictly more load than the last.
type State uint8

const (
	// StateOK admits every class.
	StateOK State = iota
	// StateShed rejects new Cold work and sheds queued Cold waiters;
	// refactors and solves still flow.
	StateShed
	// StateReject rejects all new factor work (Cold and Refactor) and
	// sheds queued waiters of both; only solves against live factors are
	// admitted.
	StateReject
	// StateDrain rejects everything; the server is shutting down.
	StateDrain
)

func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateShed:
		return "shed-low-priority"
	case StateReject:
		return "reject-new-factors"
	case StateDrain:
		return "drain"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// DefaultTenant is the identity of requests that carry no tenant label.
const DefaultTenant = "default"

// TenantLimits configure one tenant. The zero value is fully unlimited —
// quotas are opt-in per deployment, not defaults.
type TenantLimits struct {
	// Rate is the sustained admission rate in requests/second refilled
	// into the tenant's token bucket (0 = unlimited).
	Rate float64 `json:"rate"`
	// Burst is the bucket capacity: how many requests may arrive at once
	// before the rate applies (0 = max(1, ceil(Rate))).
	Burst float64 `json:"burst"`
	// MaxInFlight caps the tenant's concurrently admitted requests —
	// queued or executing (0 = unlimited).
	MaxInFlight int `json:"max_in_flight"`
	// MaxCacheBytes caps the bytes of cached plans attributed to this
	// tenant (0 = unlimited). Enforced by the serving layer against the
	// plan cache's per-tenant byte accounting, not by the controller.
	MaxCacheBytes int64 `json:"max_cache_bytes"`
}

// Config tunes a Controller. Zero values select the documented defaults.
type Config struct {
	// Workers is the number of concurrently executing heavy operations
	// (required; callers default it from GOMAXPROCS).
	Workers int
	// QueueDepth caps how many admitted requests may wait for a worker
	// before queue_full rejections begin (default 64).
	QueueDepth int
	// Default are the limits of tenants with no explicit entry.
	Default TenantLimits
	// Tenants maps tenant name → limits for explicitly configured tenants.
	Tenants map[string]TenantLimits
	// ReserveInteractive holds this many worker slots for the Interactive
	// class alone: Refactor and Cold requests may together occupy at most
	// Workers−ReserveInteractive slots, so a burst of admitted heavy
	// factorization work can never head-of-line block every execution
	// lane against latency-sensitive solves (0 = no reservation; clamped
	// to Workers−1 so the lower classes always keep at least one lane).
	ReserveInteractive int
	// ShedAt and RejectAt are queue-occupancy fractions (of QueueDepth) at
	// which the brownout state machine escalates to StateShed and
	// StateReject (defaults 0.5 and 0.85). De-escalation uses half the
	// escalation threshold, so the state machine has hysteresis instead of
	// flapping at the watermark.
	ShedAt   float64
	RejectAt float64
	// MemSoftBytes and MemHardBytes are heap watermarks (runtime heap
	// in-use) that force StateShed and StateReject regardless of queue
	// depth (0 = no memory-driven brownout).
	MemSoftBytes uint64
	MemHardBytes uint64
	// MemCheckEvery is the minimum spacing between heap samples
	// (default 250ms); the sample is cached in between.
	MemCheckEvery time.Duration
	// now is the test clock (default time.Now).
	now func() time.Time
}

func (c *Config) fillDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.ShedAt <= 0 || c.ShedAt > 1 {
		c.ShedAt = 0.5
	}
	if c.RejectAt <= 0 || c.RejectAt > 1 {
		c.RejectAt = 0.85
	}
	if c.RejectAt < c.ShedAt {
		c.RejectAt = c.ShedAt
	}
	if c.MemCheckEvery <= 0 {
		c.MemCheckEvery = 250 * time.Millisecond
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// Rejection is a structured admission refusal: an HTTP status, a stable
// machine-readable code for the error envelope, and a Retry-After hint.
// It implements error so it can flow through existing error plumbing.
type Rejection struct {
	// Status is the HTTP status to answer with: 429 for per-tenant and
	// queue-capacity limits (the client should back off and retry), 503
	// for brownout and drain (the *server* is degraded), and 504 when the
	// request's own deadline already expired.
	Status int
	// Code is the stable error-envelope code: "tenant_rate",
	// "tenant_quota", "queue_full", "brownout", "deadline_infeasible",
	// "draining".
	Code string
	// RetryAfter is the suggested client backoff. Always ≥ 0; zero means
	// "immediately, with a fresh deadline" (deadline_infeasible).
	RetryAfter time.Duration
	// Message is the human-readable explanation.
	Message string
}

func (r *Rejection) Error() string { return r.Message }

// Request describes one unit of heavy work asking for admission.
type Request struct {
	// Tenant is the requester's identity ("" means DefaultTenant).
	Tenant string
	// Priority is the scheduling class.
	Priority Priority
	// Cost is the estimated execution time (0 = unknown; exempt from
	// deadline-infeasibility shedding).
	Cost time.Duration
	// Deadline is the request's hard deadline (zero = none). Admission
	// sheds the request — immediately or while queued — once the remaining
	// budget cannot cover Cost.
	Deadline time.Time
	// Internal marks work issued by the server itself on behalf of
	// already-admitted requests (e.g. a coalesced solve batch). Internal
	// requests skip the per-tenant bucket and quota — their constituents
	// were each charged at arrival — but still wait their class's turn for
	// a worker slot.
	Internal bool
}

// waiter is one queued request.
type waiter struct {
	req      Request
	tenant   string
	enqueued time.Time
	grant    chan *Rejection // nil Rejection = slot granted
	// granted guards against the grant/shed/cancel races: exactly one
	// outcome wins.
	granted bool
}

// tenantState is one tenant's runtime accounting.
type tenantState struct {
	name   string
	limits TenantLimits

	tokens     float64   // current bucket level
	lastRefill time.Time // last bucket refill instant

	inFlight int // admitted (queued or executing) requests

	// Counters for Stats; guarded by the controller mutex.
	admitted       uint64
	rejectRate     uint64
	rejectQuota    uint64
	rejectQueue    uint64
	rejectBrownout uint64
	rejectDeadline uint64
	shed           uint64 // queued, then removed by brownout or deadline
}

// Controller is the admission gate. Create with New; one Controller fronts
// one worker pool.
type Controller struct {
	cfg Config

	mu        sync.Mutex
	busy      int // slots currently executing
	busyLower int // slots held by the Refactor and Cold classes
	tenants   map[string]*tenantState
	// queues[p] is priority p's waiter list in arrival order; tenant
	// fairness within a class comes from the dispatcher preferring the
	// least-loaded waiting tenant, not from the list order.
	queues [numPriorities][]*waiter
	// rrNext[p] is the tenant rotation cursor of class p.
	rrNext [numPriorities]int
	// credits implements the weighted round-robin across classes.
	credits [numPriorities]int

	state       State
	draining    bool
	transitions uint64
	stateSince  time.Time

	// Cached heap sample for the memory watermarks.
	heapBytes   uint64
	lastMemScan time.Time

	// ewmaServiceNs tracks observed execution time for Retry-After
	// estimates (atomic: updated by Release without the lock).
	ewmaServiceNs atomic.Int64

	deadlineShed atomic.Uint64 // waiters shed for infeasible deadlines
	memForced    atomic.Uint64 // brownout escalations forced by heap watermarks
}

// New builds a Controller. Workers must be positive.
func New(cfg Config) *Controller {
	cfg.fillDefaults()
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.ReserveInteractive < 0 {
		cfg.ReserveInteractive = 0
	}
	if cfg.ReserveInteractive >= cfg.Workers {
		cfg.ReserveInteractive = cfg.Workers - 1
	}
	c := &Controller{cfg: cfg, tenants: make(map[string]*tenantState)}
	c.stateSince = cfg.now()
	for i := range c.credits {
		c.credits[i] = classWeights[i]
	}
	return c
}

// tenantLocked returns (creating if needed) the tenant's state.
func (c *Controller) tenantLocked(name string) *tenantState {
	if name == "" {
		name = DefaultTenant
	}
	ts, ok := c.tenants[name]
	if !ok {
		lim, explicit := c.cfg.Tenants[name]
		if !explicit {
			lim = c.cfg.Default
		}
		ts = &tenantState{name: name, limits: lim, lastRefill: c.cfg.now()}
		ts.tokens = ts.burst()
		c.tenants[name] = ts
	}
	return ts
}

func (ts *tenantState) burst() float64 {
	if ts.limits.Burst > 0 {
		return ts.limits.Burst
	}
	if ts.limits.Rate <= 0 {
		return 0 // unlimited rate: bucket unused
	}
	b := ts.limits.Rate
	if b < 1 {
		b = 1
	}
	return b
}

// takeToken refills and draws one token; on failure it returns the wait
// until a token exists. Caller holds c.mu.
func (ts *tenantState) takeToken(now time.Time) (ok bool, wait time.Duration) {
	if ts.limits.Rate <= 0 {
		return true, 0
	}
	burst := ts.burst()
	// A caller's now can predate lastRefill by nanoseconds (it is captured
	// before the lock, the state possibly created after); a negative
	// elapsed must not leak tokens out of the bucket.
	if dt := now.Sub(ts.lastRefill); dt > 0 {
		ts.tokens += ts.limits.Rate * dt.Seconds()
		if ts.tokens > burst {
			ts.tokens = burst
		}
		ts.lastRefill = now
	}
	if ts.tokens >= 1-1e-9 {
		ts.tokens--
		return true, 0
	}
	need := 1 - ts.tokens
	return false, time.Duration(need / ts.limits.Rate * float64(time.Second))
}

// ---- brownout state machine ----

// evalStateLocked recomputes the brownout state from queue occupancy and
// the heap watermarks, with hysteresis (de-escalation thresholds are half
// the escalation ones). Drain, set explicitly, dominates everything.
// Returns waiters shed by an escalation; the caller must notify them after
// releasing the lock.
func (c *Controller) evalStateLocked() []*waiter {
	if c.draining {
		return c.setStateLocked(StateDrain)
	}
	queued := 0
	for p := range c.queues {
		queued += len(c.queues[p])
	}
	occ := float64(queued) / float64(c.cfg.QueueDepth)

	target := StateOK
	switch {
	case occ >= c.cfg.RejectAt:
		target = StateReject
	case occ >= c.cfg.ShedAt:
		target = StateShed
	default:
		// Hysteresis: once escalated, stay until occupancy falls below
		// half the threshold that triggered the escalation.
		switch c.state {
		case StateReject:
			if occ >= c.cfg.RejectAt/2 {
				target = StateReject
			} else if occ >= c.cfg.ShedAt/2 {
				target = StateShed
			}
		case StateShed:
			if occ >= c.cfg.ShedAt/2 {
				target = StateShed
			}
		}
	}

	if mem := c.memStateLocked(); mem > target {
		target = mem
		c.memForced.Add(1)
	}
	return c.setStateLocked(target)
}

// memStateLocked maps the (cached) heap sample onto a brownout floor.
func (c *Controller) memStateLocked() State {
	if c.cfg.MemSoftBytes == 0 && c.cfg.MemHardBytes == 0 {
		return StateOK
	}
	now := c.cfg.now()
	if now.Sub(c.lastMemScan) >= c.cfg.MemCheckEvery {
		c.lastMemScan = now
		// The chaos suite injects synthetic heap pressure here so brownout
		// transitions are testable without allocating gigabytes for real.
		if v, ok := faultinject.FireValue("admission.mempressure"); ok {
			c.heapBytes = uint64(v)
		} else {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			c.heapBytes = ms.HeapInuse
		}
	}
	switch {
	case c.cfg.MemHardBytes > 0 && c.heapBytes >= c.cfg.MemHardBytes:
		return StateReject
	case c.cfg.MemSoftBytes > 0 && c.heapBytes >= c.cfg.MemSoftBytes:
		return StateShed
	}
	return StateOK
}

// setStateLocked transitions to target, shedding queued waiters the new
// state no longer tolerates. Caller holds c.mu and must deliver the
// returned waiters' rejections after unlocking.
func (c *Controller) setStateLocked(target State) []*waiter {
	if target != c.state {
		c.state = target
		c.transitions++
		c.stateSince = c.cfg.now()
	}
	var minShed Priority
	switch c.state {
	case StateShed:
		minShed = Cold
	case StateReject:
		minShed = Refactor
	case StateDrain:
		minShed = Interactive
	default:
		return nil
	}
	var shed []*waiter
	for p := minShed; p < numPriorities; p++ {
		for _, w := range c.queues[p] {
			if !w.granted {
				w.granted = true
				ts := c.tenantLocked(w.tenant)
				ts.inFlight--
				ts.shed++
				shed = append(shed, w)
			}
		}
		c.queues[p] = nil
	}
	return shed
}

// brownoutRejectionLocked returns the rejection for req under the current
// state, or nil if the state admits it.
func (c *Controller) brownoutRejectionLocked(req Request) *Rejection {
	switch c.state {
	case StateDrain:
		return &Rejection{
			Status: 503, Code: "draining", RetryAfter: 10 * time.Second,
			Message: "server is draining for shutdown",
		}
	case StateReject:
		if req.Priority >= Refactor {
			return &Rejection{
				Status: 503, Code: "brownout", RetryAfter: c.retryAfterLocked(2),
				Message: fmt.Sprintf("overloaded (%s): rejecting new factorizations; only solves are admitted", c.state),
			}
		}
	case StateShed:
		if req.Priority >= Cold {
			return &Rejection{
				Status: 503, Code: "brownout", RetryAfter: c.retryAfterLocked(1),
				Message: fmt.Sprintf("overloaded (%s): shedding cold factorizations", c.state),
			}
		}
	}
	return nil
}

// retryAfterLocked estimates a useful Retry-After from the queue length and
// the observed service-time EWMA, scaled by how degraded the state is, and
// clamped to [1s, 60s] so clients always get a sane, non-zero hint.
func (c *Controller) retryAfterLocked(scale int) time.Duration {
	svc := time.Duration(c.ewmaServiceNs.Load())
	if svc <= 0 {
		svc = 100 * time.Millisecond
	}
	queued := 0
	for p := range c.queues {
		queued += len(c.queues[p])
	}
	est := time.Duration(queued+1) * svc / time.Duration(c.cfg.Workers) * time.Duration(scale)
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}

// ---- admission ----

// infeasible reports whether req's deadline can no longer cover its cost.
func infeasible(req Request, now time.Time) bool {
	return !req.Deadline.IsZero() && req.Cost > 0 && now.Add(req.Cost).After(req.Deadline)
}

// Charge applies only the lightweight per-tenant checks — token bucket,
// brownout gate — without taking a worker slot or counting against the
// concurrency quota. The batched-solve path uses it: each arriving solve
// is charged individually, then coalesced; the batch itself acquires one
// internal slot.
func (c *Controller) Charge(tenant string, pri Priority) *Rejection {
	c.mu.Lock()
	shed := c.evalStateLocked()
	var rej *Rejection
	ts := c.tenantLocked(tenant)
	if r := c.brownoutRejectionLocked(Request{Priority: pri}); r != nil {
		ts.rejectBrownout++
		rej = r
	} else if ok, wait := ts.takeToken(c.cfg.now()); !ok {
		ts.rejectRate++
		rej = &Rejection{
			Status: 429, Code: "tenant_rate", RetryAfter: ceilSecond(wait),
			Message: fmt.Sprintf("tenant %q exceeded its %.3g req/s rate limit", ts.name, ts.limits.Rate),
		}
	} else {
		ts.admitted++
	}
	c.mu.Unlock()
	deliver(shed)
	return rej
}

// Precheck applies every rejection gate that needs only the request
// headers — brownout state, concurrency quota, token-bucket level (peeked,
// not drawn: the request may still fail validation before Admit) — so a
// handler can shed a doomed request before spending CPU reading and
// parsing its body. Under a flood that is precisely where the money is:
// an overloaded server's rejection path must cost microseconds, or the
// rejections themselves become the overload. A nil return is a hint, not
// a reservation; Admit later applies the same gates authoritatively.
func (c *Controller) Precheck(tenant string, pri Priority) *Rejection {
	now := c.cfg.now()
	c.mu.Lock()
	shed := c.evalStateLocked()
	var rej *Rejection
	ts := c.tenantLocked(tenant)
	if r := c.brownoutRejectionLocked(Request{Priority: pri}); r != nil {
		ts.rejectBrownout++
		rej = r
	} else if lim := ts.limits.MaxInFlight; lim > 0 && ts.inFlight >= lim {
		ts.rejectQuota++
		rej = &Rejection{
			Status: 429, Code: "tenant_quota", RetryAfter: c.quotaRetryAfter(),
			Message: fmt.Sprintf("tenant %q is at its concurrency quota (%d in flight)", ts.name, lim),
		}
	} else if ts.limits.Rate > 0 {
		// Peek the bucket: refill to now, but only reject — never draw.
		if ok, wait := ts.takeToken(now); ok {
			ts.tokens++
		} else {
			ts.rejectRate++
			rej = &Rejection{
				Status: 429, Code: "tenant_rate", RetryAfter: ceilSecond(wait),
				Message: fmt.Sprintf("tenant %q exceeded its %.3g req/s rate limit", ts.name, ts.limits.Rate),
			}
		}
	}
	c.mu.Unlock()
	deliver(shed)
	return rej
}

// Admit asks for a worker slot. On success it returns a release function
// that MUST be called exactly once when the work finishes; on failure it
// returns a structured Rejection. Admission can block (bounded by the
// queue, the brownout machine, and ctx); the returned error is ctx.Err()
// only if ctx ended while queued.
func (c *Controller) Admit(ctx context.Context, req Request) (release func(), rej *Rejection, err error) {
	now := c.cfg.now()
	c.mu.Lock()
	shed := c.evalStateLocked()

	ts := c.tenantLocked(req.Tenant)
	if r := c.brownoutRejectionLocked(req); r != nil {
		ts.rejectBrownout++
		c.mu.Unlock()
		deliver(shed)
		return nil, r, nil
	}
	if infeasible(req, now) {
		ts.rejectDeadline++
		c.deadlineShed.Add(1)
		c.mu.Unlock()
		deliver(shed)
		return nil, &Rejection{
			Status: 504, Code: "deadline_infeasible", RetryAfter: 0,
			Message: fmt.Sprintf("remaining deadline %v cannot cover the estimated %v of work", time.Until(req.Deadline).Round(time.Millisecond), req.Cost.Round(time.Millisecond)),
		}, nil
	}
	if !req.Internal {
		if lim := ts.limits.MaxInFlight; lim > 0 && ts.inFlight >= lim {
			ts.rejectQuota++
			c.mu.Unlock()
			deliver(shed)
			return nil, &Rejection{
				Status: 429, Code: "tenant_quota", RetryAfter: c.quotaRetryAfter(),
				Message: fmt.Sprintf("tenant %q is at its concurrency quota (%d in flight)", ts.name, lim),
			}, nil
		}
		if ok, wait := ts.takeToken(now); !ok {
			ts.rejectRate++
			c.mu.Unlock()
			deliver(shed)
			return nil, &Rejection{
				Status: 429, Code: "tenant_rate", RetryAfter: ceilSecond(wait),
				Message: fmt.Sprintf("tenant %q exceeded its %.3g req/s rate limit", ts.name, ts.limits.Rate),
			}, nil
		}
	}

	// Fast path: a free slot this class may occupy and nobody of
	// equal-or-higher urgency waiting.
	if c.busy < c.cfg.Workers && !c.anyWaiterUpToLocked(req.Priority) && c.laneFreeLocked(req.Priority) {
		c.busy++
		if req.Priority > Interactive {
			c.busyLower++
		}
		ts.inFlight++
		ts.admitted++
		c.mu.Unlock()
		deliver(shed)
		return c.releaseFunc(req.Tenant, now, req.Priority), nil, nil
	}

	queued := 0
	for p := range c.queues {
		queued += len(c.queues[p])
	}
	if queued >= c.cfg.QueueDepth {
		ts.rejectQueue++
		rej := &Rejection{
			Status: 429, Code: "queue_full", RetryAfter: c.retryAfterLocked(1),
			Message: fmt.Sprintf("admission queue full (%d waiting)", queued),
		}
		c.mu.Unlock()
		deliver(shed)
		return nil, rej, nil
	}

	w := &waiter{req: req, tenant: ts.name, enqueued: now, grant: make(chan *Rejection, 1)}
	c.queues[req.Priority] = append(c.queues[req.Priority], w)
	ts.inFlight++
	ts.admitted++
	c.mu.Unlock()
	deliver(shed)

	select {
	case r := <-w.grant:
		if r != nil {
			return nil, r, nil
		}
		return c.releaseFunc(w.tenant, now, w.req.Priority), nil, nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.granted {
			// A grant or shed raced the cancellation and won; honor it.
			c.mu.Unlock()
			r := <-w.grant
			if r != nil {
				return nil, r, nil
			}
			return c.releaseFunc(w.tenant, now, w.req.Priority), nil, nil
		}
		w.granted = true
		c.removeWaiterLocked(w)
		c.tenantLocked(w.tenant).inFlight--
		c.mu.Unlock()
		return nil, nil, ctx.Err()
	}
}

// anyWaiterUpToLocked reports whether any class ≤ pri (equal or more
// urgent) has waiters — if so, a newly arriving request must queue behind
// them instead of jumping the line through the fast path.
func (c *Controller) anyWaiterUpToLocked(pri Priority) bool {
	for p := Priority(0); p <= pri && p < numPriorities; p++ {
		if len(c.queues[p]) > 0 {
			return true
		}
	}
	return false
}

func (c *Controller) removeWaiterLocked(w *waiter) {
	q := c.queues[w.req.Priority]
	for i, x := range q {
		if x == w {
			c.queues[w.req.Priority] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

// laneFreeLocked reports whether class pri may occupy one more worker
// slot: Interactive always may; Refactor and Cold together are capped at
// Workers−ReserveInteractive so reserved lanes stay open for solves.
func (c *Controller) laneFreeLocked(pri Priority) bool {
	return pri == Interactive || c.busyLower < c.cfg.Workers-c.cfg.ReserveInteractive
}

// releaseFunc returns the exactly-once release closure for one admitted
// request, observing its service time into the Retry-After EWMA.
func (c *Controller) releaseFunc(tenant string, start time.Time, pri Priority) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			took := c.cfg.now().Sub(start)
			c.observeService(took)
			c.mu.Lock()
			c.busy--
			if pri > Interactive {
				c.busyLower--
			}
			c.tenantLocked(tenant).inFlight--
			granted, shed := c.dispatchLocked()
			shed = append(shed, c.evalStateLocked()...)
			c.mu.Unlock()
			deliver(shed)
			for _, w := range granted {
				w.grant <- nil
			}
		})
	}
}

func (c *Controller) observeService(took time.Duration) {
	const alpha = 8 // EWMA ~ 1/8 new sample
	for {
		old := c.ewmaServiceNs.Load()
		var next int64
		if old == 0 {
			next = int64(took)
		} else {
			next = old + (int64(took)-old)/alpha
		}
		if c.ewmaServiceNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// dispatchLocked hands free slots to waiters: weighted round-robin across
// classes, round-robin across tenants within a class, shedding waiters
// whose deadline became infeasible while they queued. Caller holds c.mu;
// returned grant/shed deliveries happen after unlock.
func (c *Controller) dispatchLocked() (granted, shed []*waiter) {
	now := c.cfg.now()
	for c.busy < c.cfg.Workers {
		w := c.pickLocked(now, &shed)
		if w == nil {
			break
		}
		w.granted = true
		c.busy++
		if w.req.Priority > Interactive {
			c.busyLower++
		}
		granted = append(granted, w)
	}
	return granted, shed
}

// pickLocked selects the next waiter under the WRR policy, removing it
// from its queue. Deadline-infeasible waiters encountered along the way
// are shed (appended to *shed) rather than granted a slot they can no
// longer use.
func (c *Controller) pickLocked(now time.Time, shed *[]*waiter) *waiter {
	for tries := 0; tries < 2; tries++ {
		// First pass honors the WRR credits; if every non-empty class is
		// out of credit, replenish and go again.
		for p := Priority(0); p < numPriorities; p++ {
			if len(c.queues[p]) == 0 || c.credits[p] <= 0 || !c.laneFreeLocked(p) {
				continue
			}
			if w := c.takeFromClassLocked(p, now, shed); w != nil {
				c.credits[p]--
				return w
			}
		}
		anyWaiting := false
		for p := range c.queues {
			anyWaiting = anyWaiting || len(c.queues[p]) > 0
		}
		if !anyWaiting {
			return nil
		}
		for p := range c.credits {
			c.credits[p] = classWeights[p]
		}
	}
	return nil
}

// takeFromClassLocked pops class p's next waiter, preferring the waiting
// tenant with the least admitted work outstanding (max-min fairness: a
// tenant flooding the queue always has more in flight than a paced one,
// so the paced tenant's occasional request jumps the flood's backlog
// rather than waiting behind it), breaking ties by rotation so
// equally-loaded tenants share the class round-robin. A heavy tenant is
// never starved outright — the moment lighter tenants have nothing
// queued, its backlog gets every slot. Infeasible deadlines encountered
// along the way are shed.
func (c *Controller) takeFromClassLocked(p Priority, now time.Time, shedOut *[]*waiter) *waiter {
	q := c.queues[p]
	for len(q) > 0 {
		// Distinct waiting tenants, in first-arrival order, narrowed to
		// those with the fewest admitted (queued or executing) requests.
		var tenants []string
		minLoad := -1
		seen := map[string]bool{}
		for _, w := range q {
			if seen[w.tenant] {
				continue
			}
			seen[w.tenant] = true
			load := c.tenantLocked(w.tenant).inFlight
			switch {
			case minLoad < 0 || load < minLoad:
				minLoad = load
				tenants = append(tenants[:0], w.tenant)
			case load == minLoad:
				tenants = append(tenants, w.tenant)
			}
		}
		pick := tenants[c.rrNext[p]%len(tenants)]
		c.rrNext[p]++
		// Oldest waiter of the picked tenant.
		idx := -1
		for i, w := range q {
			if w.tenant == pick {
				idx = i
				break
			}
		}
		w := q[idx]
		q = append(q[:idx], q[idx+1:]...)
		c.queues[p] = q
		if infeasible(w.req, now) {
			w.granted = true
			ts := c.tenantLocked(w.tenant)
			ts.inFlight--
			ts.rejectDeadline++
			ts.shed++
			c.deadlineShed.Add(1)
			*shedOut = append(*shedOut, w)
			continue
		}
		return w
	}
	return nil
}

// deliver sends shed waiters their rejections. Must run without c.mu held:
// the receiving goroutines immediately re-enter the controller.
func deliver(shed []*waiter) {
	for _, w := range shed {
		rej := &Rejection{
			Status: 503, Code: "brownout", RetryAfter: 2 * time.Second,
			Message: "shed from the admission queue by overload degradation",
		}
		if infeasible(w.req, time.Now()) && w.req.Cost > 0 {
			rej = &Rejection{
				Status: 504, Code: "deadline_infeasible", RetryAfter: 0,
				Message: "deadline budget exhausted while queued",
			}
		}
		w.grant <- rej
	}
}

// SetDraining flips drain mode: everything is rejected and every queued
// waiter is shed. Draining dominates all other states until cleared.
func (c *Controller) SetDraining(on bool) {
	c.mu.Lock()
	c.draining = on
	shed := c.evalStateLocked()
	c.mu.Unlock()
	deliver(shed)
}

// State returns the current brownout state.
func (c *Controller) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// ceilSecond rounds a wait up to whole seconds (HTTP Retry-After
// granularity), minimum 1s.
func ceilSecond(d time.Duration) time.Duration {
	if d <= 0 {
		return time.Second
	}
	s := (d + time.Second - 1) / time.Second * time.Second
	if s < time.Second {
		s = time.Second
	}
	return s
}

func (c *Controller) quotaRetryAfter() time.Duration {
	svc := time.Duration(c.ewmaServiceNs.Load())
	return ceilSecond(svc)
}

// ---- metrics ----

// TenantStats is one tenant's /metrics row.
type TenantStats struct {
	Admitted         uint64 `json:"admitted"`
	RejectedRate     uint64 `json:"rejected_rate"`
	RejectedQuota    uint64 `json:"rejected_quota"`
	RejectedQueue    uint64 `json:"rejected_queue_full"`
	RejectedBrownout uint64 `json:"rejected_brownout"`
	RejectedDeadline uint64 `json:"rejected_deadline"`
	Shed             uint64 `json:"shed"`
	InFlight         int    `json:"in_flight"`
}

// Stats is the controller's /metrics document.
type Stats struct {
	State        string                 `json:"state"`
	StateSinceMs float64                `json:"state_since_ms"` // age of the current state
	Transitions  uint64                 `json:"transitions"`
	Workers      int                    `json:"workers"`
	Busy         int                    `json:"busy"`
	Queued       [numPriorities]int     `json:"-"`
	QueuedByPri  map[string]int         `json:"queued"`
	QueueDepth   int                    `json:"queue_depth"`
	DeadlineShed uint64                 `json:"deadline_shed"`
	MemForced    uint64                 `json:"mem_forced"` // brownout escalations from heap watermarks
	HeapBytes    uint64                 `json:"heap_bytes"` // last heap sample (0 if watermarks off)
	Tenants      map[string]TenantStats `json:"tenants"`
}

// Snapshot renders the controller's counters.
func (c *Controller) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		State:        c.state.String(),
		StateSinceMs: float64(c.cfg.now().Sub(c.stateSince).Microseconds()) / 1e3,
		Transitions:  c.transitions,
		Workers:      c.cfg.Workers,
		Busy:         c.busy,
		QueueDepth:   c.cfg.QueueDepth,
		DeadlineShed: c.deadlineShed.Load(),
		MemForced:    c.memForced.Load(),
		HeapBytes:    c.heapBytes,
		QueuedByPri:  make(map[string]int, numPriorities),
		Tenants:      make(map[string]TenantStats, len(c.tenants)),
	}
	for p := Priority(0); p < numPriorities; p++ {
		st.Queued[p] = len(c.queues[p])
		st.QueuedByPri[p.String()] = len(c.queues[p])
	}
	for name, ts := range c.tenants {
		st.Tenants[name] = TenantStats{
			Admitted:         ts.admitted,
			RejectedRate:     ts.rejectRate,
			RejectedQuota:    ts.rejectQuota,
			RejectedQueue:    ts.rejectQueue,
			RejectedBrownout: ts.rejectBrownout,
			RejectedDeadline: ts.rejectDeadline,
			Shed:             ts.shed,
			InFlight:         ts.inFlight,
		}
	}
	return st
}

// Limits returns the limits tenant operates under (explicit or default).
func (c *Controller) Limits(tenant string) TenantLimits {
	if tenant == "" {
		tenant = DefaultTenant
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tenantLocked(tenant).limits
}
