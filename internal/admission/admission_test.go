package admission

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// admit is a test helper asserting a request is admitted immediately.
func admit(t *testing.T, c *Controller, req Request) func() {
	t.Helper()
	rel, rej, err := c.Admit(context.Background(), req)
	if err != nil {
		t.Fatalf("Admit returned ctx error: %v", err)
	}
	if rej != nil {
		t.Fatalf("Admit rejected: %d %s %s", rej.Status, rej.Code, rej.Message)
	}
	return rel
}

func TestAdmitReleaseBasic(t *testing.T) {
	c := New(Config{Workers: 2, QueueDepth: 4})
	r1 := admit(t, c, Request{Priority: Interactive})
	r2 := admit(t, c, Request{Priority: Cold})
	st := c.Snapshot()
	if st.Busy != 2 {
		t.Fatalf("busy = %d, want 2", st.Busy)
	}
	r1()
	r1() // double release must be a no-op
	r2()
	if st := c.Snapshot(); st.Busy != 0 {
		t.Fatalf("busy after release = %d, want 0", st.Busy)
	}
	if got := st.Tenants[DefaultTenant].Admitted; got != 2 {
		t.Fatalf("default tenant admitted = %d, want 2", got)
	}
}

func TestQueueFullRejection(t *testing.T) {
	c := New(Config{Workers: 1, QueueDepth: 1, RejectAt: 1, ShedAt: 1})
	rel := admit(t, c, Request{Priority: Interactive})
	defer rel()

	// Fill the single queue slot.
	done := make(chan struct{})
	go func() {
		rel2, rej, err := c.Admit(context.Background(), Request{Priority: Interactive})
		if err != nil || rej != nil {
			t.Errorf("queued admit failed: rej=%v err=%v", rej, err)
		} else {
			rel2()
		}
		close(done)
	}()
	waitFor(t, func() bool { return c.Snapshot().QueuedByPri["interactive"] == 1 })

	_, rej, err := c.Admit(context.Background(), Request{Priority: Interactive})
	if err != nil {
		t.Fatalf("unexpected ctx err: %v", err)
	}
	if rej == nil || rej.Code != "queue_full" || rej.Status != 429 {
		t.Fatalf("rejection = %+v, want 429 queue_full", rej)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("queue_full rejection missing Retry-After: %v", rej.RetryAfter)
	}
	rel()
	<-done
}

func TestTenantRateLimit(t *testing.T) {
	c := New(Config{
		Workers: 8, QueueDepth: 8,
		Tenants: map[string]TenantLimits{"slow": {Rate: 1, Burst: 2}},
	})
	// Burst of 2 admitted, third rejected by the bucket.
	r1 := admit(t, c, Request{Tenant: "slow"})
	r2 := admit(t, c, Request{Tenant: "slow"})
	_, rej, _ := c.Admit(context.Background(), Request{Tenant: "slow"})
	if rej == nil || rej.Code != "tenant_rate" || rej.Status != 429 {
		t.Fatalf("rejection = %+v, want 429 tenant_rate", rej)
	}
	if rej.RetryAfter < time.Second {
		t.Fatalf("tenant_rate Retry-After = %v, want >= 1s", rej.RetryAfter)
	}
	// Other tenants are unaffected.
	r3 := admit(t, c, Request{Tenant: "other"})
	r1()
	r2()
	r3()
	st := c.Snapshot()
	if st.Tenants["slow"].RejectedRate != 1 {
		t.Fatalf("slow rejected_rate = %d, want 1", st.Tenants["slow"].RejectedRate)
	}
}

func TestTenantConcurrencyQuota(t *testing.T) {
	c := New(Config{
		Workers: 8, QueueDepth: 8,
		Tenants: map[string]TenantLimits{"capped": {MaxInFlight: 1}},
	})
	rel := admit(t, c, Request{Tenant: "capped"})
	_, rej, _ := c.Admit(context.Background(), Request{Tenant: "capped"})
	if rej == nil || rej.Code != "tenant_quota" || rej.Status != 429 {
		t.Fatalf("rejection = %+v, want 429 tenant_quota", rej)
	}
	rel()
	// Slot freed: the tenant may run again.
	admit(t, c, Request{Tenant: "capped"})()
}

func TestPriorityOrderAndWRR(t *testing.T) {
	c := New(Config{Workers: 1, QueueDepth: 32, RejectAt: 1, ShedAt: 1})
	rel := admit(t, c, Request{Priority: Interactive})

	var order []Priority
	var mu sync.Mutex
	var wg sync.WaitGroup
	enqueue := func(p Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, rej, err := c.Admit(context.Background(), Request{Priority: p})
			if rej != nil || err != nil {
				t.Errorf("admit(%v): rej=%v err=%v", p, rej, err)
				return
			}
			mu.Lock()
			order = append(order, p)
			mu.Unlock()
			r()
		}()
	}
	// Queue colds first, then interactives; drain order must still favor
	// interactive heavily (WRR 8:3:1).
	for i := 0; i < 3; i++ {
		enqueue(Cold)
		waitFor(t, func() bool { return c.Snapshot().QueuedByPri["cold"] == i+1 })
	}
	for i := 0; i < 3; i++ {
		enqueue(Interactive)
		waitFor(t, func() bool { return c.Snapshot().QueuedByPri["interactive"] == i+1 })
	}
	rel()
	wg.Wait()
	// With 3 of each queued and credits 8/3/1, all interactives drain
	// before the last cold.
	mu.Lock()
	defer mu.Unlock()
	lastInteractive, lastCold := -1, -1
	for i, p := range order {
		if p == Interactive {
			lastInteractive = i
		} else {
			lastCold = i
		}
	}
	if lastInteractive > lastCold {
		t.Fatalf("interactive drained after the final cold: order=%v", order)
	}
}

func TestTenantRoundRobinWithinClass(t *testing.T) {
	c := New(Config{Workers: 1, QueueDepth: 32, RejectAt: 1, ShedAt: 1})
	rel := admit(t, c, Request{Priority: Interactive})

	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	enqueue := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			cur := 0
			mu.Lock()
			cur = len(order)
			mu.Unlock()
			_ = cur
			before := c.Snapshot().QueuedByPri["interactive"]
			go func() {
				defer wg.Done()
				r, rej, err := c.Admit(context.Background(), Request{Tenant: tenant, Priority: Interactive})
				if rej != nil || err != nil {
					t.Errorf("admit: rej=%v err=%v", rej, err)
					return
				}
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
				r()
			}()
			waitFor(t, func() bool { return c.Snapshot().QueuedByPri["interactive"] == before+1 })
		}
	}
	// Tenant A floods first; B arrives later with 2 requests. Round-robin
	// must interleave B's instead of serving all of A first.
	enqueue("a", 6)
	enqueue("b", 2)
	rel()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	// B's 2nd grant must come before A's 6th (strict FIFO would put both
	// B's at positions 7–8).
	posB2, posA6 := -1, -1
	seenB, seenA := 0, 0
	for i, tn := range order {
		if tn == "b" {
			seenB++
			if seenB == 2 {
				posB2 = i
			}
		} else {
			seenA++
			if seenA == 6 {
				posA6 = i
			}
		}
	}
	if posB2 > posA6 {
		t.Fatalf("tenant b starved by a's flood: order=%v", order)
	}
}

func TestDeadlineInfeasibleAtAdmit(t *testing.T) {
	c := New(Config{Workers: 1, QueueDepth: 4})
	_, rej, _ := c.Admit(context.Background(), Request{
		Priority: Cold,
		Cost:     time.Hour,
		Deadline: time.Now().Add(time.Second),
	})
	if rej == nil || rej.Code != "deadline_infeasible" || rej.Status != 504 {
		t.Fatalf("rejection = %+v, want 504 deadline_infeasible", rej)
	}
	if st := c.Snapshot(); st.DeadlineShed != 1 {
		t.Fatalf("deadline_shed = %d, want 1", st.DeadlineShed)
	}
}

func TestDeadlineShedWhileQueued(t *testing.T) {
	c := New(Config{Workers: 1, QueueDepth: 4, RejectAt: 1, ShedAt: 1})
	rel := admit(t, c, Request{Priority: Interactive})

	// Queue a request whose deadline will expire while it waits.
	got := make(chan *Rejection, 1)
	go func() {
		r, rej, err := c.Admit(context.Background(), Request{
			Priority: Interactive,
			Cost:     50 * time.Millisecond,
			Deadline: time.Now().Add(60 * time.Millisecond),
		})
		if err != nil {
			t.Errorf("ctx err: %v", err)
		}
		if r != nil {
			r()
		}
		got <- rej
	}()
	waitFor(t, func() bool { return c.Snapshot().QueuedByPri["interactive"] == 1 })
	time.Sleep(80 * time.Millisecond) // deadline now uncoverable
	rel()                             // dispatch: the waiter must be shed, not granted
	rej := <-got
	if rej == nil || rej.Code != "deadline_infeasible" {
		t.Fatalf("queued waiter rejection = %+v, want deadline_infeasible", rej)
	}
}

func TestContextCancelWhileQueued(t *testing.T) {
	c := New(Config{Workers: 1, QueueDepth: 4, RejectAt: 1, ShedAt: 1})
	rel := admit(t, c, Request{Priority: Interactive})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Admit(ctx, Request{Priority: Interactive})
		done <- err
	}()
	waitFor(t, func() bool { return c.Snapshot().QueuedByPri["interactive"] == 1 })
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitFor(t, func() bool { return c.Snapshot().QueuedByPri["interactive"] == 0 })
	rel()
	if st := c.Snapshot(); st.Tenants[DefaultTenant].InFlight != 0 {
		t.Fatalf("in_flight = %d after cancel+release, want 0", st.Tenants[DefaultTenant].InFlight)
	}
}

func TestBrownoutShedAndReject(t *testing.T) {
	// QueueDepth 10, ShedAt 0.3 (3 queued), RejectAt 0.6 (6 queued).
	c := New(Config{Workers: 1, QueueDepth: 10, ShedAt: 0.3, RejectAt: 0.6})
	rel := admit(t, c, Request{Priority: Interactive})

	var wg sync.WaitGroup
	queueOne := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, _, _ := c.Admit(context.Background(), Request{Priority: Interactive})
			if r != nil {
				r()
			}
		}()
		waitFor(t, func() bool { return c.Snapshot().QueuedByPri["interactive"] == i })
	}
	for i := 1; i <= 3; i++ {
		queueOne(i)
	}
	// 3/10 queued ≥ ShedAt: next cold request must see brownout.
	_, rej, _ := c.Admit(context.Background(), Request{Priority: Cold})
	if rej == nil || rej.Code != "brownout" || rej.Status != 503 {
		t.Fatalf("cold under shed = %+v, want 503 brownout", rej)
	}
	if got := c.State(); got != StateShed {
		t.Fatalf("state = %v, want shed", got)
	}
	// Refactors still flow in StateShed (they queue).
	for i := 4; i <= 6; i++ {
		queueOne(i)
	}
	_, rej, _ = c.Admit(context.Background(), Request{Priority: Refactor})
	if rej == nil || rej.Code != "brownout" {
		t.Fatalf("refactor under reject = %+v, want brownout", rej)
	}
	if got := c.State(); got != StateReject {
		t.Fatalf("state = %v, want reject-new-factors", got)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("brownout rejection missing Retry-After")
	}
	rel()
	wg.Wait()
	// Queue drained: state must fall back to ok (hysteresis at occ < ShedAt/2 = 0).
	_, rej, _ = c.Admit(context.Background(), Request{Priority: Cold})
	if rej != nil {
		t.Fatalf("cold after drain rejected: %+v", rej)
	}
	if got := c.State(); got != StateOK {
		t.Fatalf("state after drain = %v, want ok", got)
	}
	st := c.Snapshot()
	if st.Transitions < 3 { // ok→shed→reject→(shed→)ok
		t.Fatalf("transitions = %d, want >= 3", st.Transitions)
	}
}

func TestBrownoutShedsQueuedCold(t *testing.T) {
	c := New(Config{Workers: 1, QueueDepth: 10, ShedAt: 0.4, RejectAt: 0.9})
	rel := admit(t, c, Request{Priority: Interactive})

	// Queue one cold while state is still ok.
	coldRej := make(chan *Rejection, 1)
	go func() {
		r, rej, _ := c.Admit(context.Background(), Request{Priority: Cold})
		if r != nil {
			r()
		}
		coldRej <- rej
	}()
	waitFor(t, func() bool { return c.Snapshot().QueuedByPri["cold"] == 1 })

	// Push interactive queue depth past ShedAt: the queued cold is shed.
	var wg sync.WaitGroup
	for i := 1; i <= 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, _, _ := c.Admit(context.Background(), Request{Priority: Interactive})
			if r != nil {
				r()
			}
		}()
		waitFor(t, func() bool { return c.Snapshot().QueuedByPri["interactive"] == i })
	}
	rej := <-coldRej
	if rej == nil || rej.Code != "brownout" || rej.Status != 503 {
		t.Fatalf("queued cold shed = %+v, want 503 brownout", rej)
	}
	rel()
	wg.Wait()
}

func TestDrainRejectsEverything(t *testing.T) {
	c := New(Config{Workers: 2, QueueDepth: 4})
	c.SetDraining(true)
	_, rej, _ := c.Admit(context.Background(), Request{Priority: Interactive})
	if rej == nil || rej.Code != "draining" || rej.Status != 503 {
		t.Fatalf("rejection = %+v, want 503 draining", rej)
	}
	if got := c.State(); got != StateDrain {
		t.Fatalf("state = %v, want drain", got)
	}
	c.SetDraining(false)
	admit(t, c, Request{Priority: Interactive})()
}

func TestChargeBucketOnly(t *testing.T) {
	c := New(Config{
		Workers: 1, QueueDepth: 4,
		Tenants: map[string]TenantLimits{"t": {Rate: 1, Burst: 1, MaxInFlight: 1}},
	})
	// Charge draws the bucket but not the concurrency quota.
	if rej := c.Charge("t", Interactive); rej != nil {
		t.Fatalf("first charge rejected: %+v", rej)
	}
	if rej := c.Charge("t", Interactive); rej == nil || rej.Code != "tenant_rate" {
		t.Fatalf("second charge = %+v, want tenant_rate", rej)
	}
	// Internal admission ignores bucket and quota entirely.
	rel, rej, err := c.Admit(context.Background(), Request{Tenant: "t", Priority: Interactive, Internal: true})
	if rej != nil || err != nil {
		t.Fatalf("internal admit: rej=%v err=%v", rej, err)
	}
	rel()
}

func TestMemoryWatermarkForcesBrownout(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	c := New(Config{
		Workers: 2, QueueDepth: 8,
		MemSoftBytes: 1 << 50, MemHardBytes: 1 << 51, // far above any real heap
		MemCheckEvery: time.Nanosecond,
		now:           clock,
	})
	if got := c.State(); got != StateOK {
		t.Fatalf("state = %v, want ok (heap below watermark)", got)
	}
	// Shrink the watermarks below the real heap: next eval must escalate.
	c.mu.Lock()
	c.cfg.MemSoftBytes = 1
	c.cfg.MemHardBytes = 1 << 50
	c.lastMemScan = time.Time{}
	c.mu.Unlock()
	now = now.Add(time.Second)
	_, rej, _ := c.Admit(context.Background(), Request{Priority: Cold})
	if rej == nil || rej.Code != "brownout" {
		t.Fatalf("cold above mem soft watermark = %+v, want brownout", rej)
	}
	st := c.Snapshot()
	if st.MemForced == 0 {
		t.Fatalf("mem_forced = 0, want > 0")
	}
	if st.HeapBytes == 0 {
		t.Fatalf("heap_bytes not sampled")
	}
}

func TestConcurrentStress(t *testing.T) {
	c := New(Config{
		Workers: 4, QueueDepth: 16, ShedAt: 0.6, RejectAt: 0.9,
		Tenants: map[string]TenantLimits{"x": {MaxInFlight: 8}},
	})
	var admitted, rejected atomic.Int64
	var inFlight atomic.Int64
	var maxSeen atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := "x"
			if g%2 == 0 {
				tenant = "y"
			}
			for i := 0; i < 50; i++ {
				rel, rej, err := c.Admit(context.Background(), Request{
					Tenant:   tenant,
					Priority: Priority(i % int(numPriorities)),
				})
				if err != nil {
					t.Errorf("ctx err: %v", err)
					return
				}
				if rej != nil {
					rejected.Add(1)
					continue
				}
				n := inFlight.Add(1)
				for {
					m := maxSeen.Load()
					if n <= m || maxSeen.CompareAndSwap(m, n) {
						break
					}
				}
				admitted.Add(1)
				inFlight.Add(-1)
				rel()
			}
		}(g)
	}
	wg.Wait()
	if m := maxSeen.Load(); m > 4 {
		t.Fatalf("concurrent executions %d exceeded Workers=4", m)
	}
	st := c.Snapshot()
	if st.Busy != 0 {
		t.Fatalf("busy = %d after all work done, want 0", st.Busy)
	}
	for name, ts := range st.Tenants {
		if ts.InFlight != 0 {
			t.Fatalf("tenant %s in_flight = %d, want 0", name, ts.InFlight)
		}
	}
	if admitted.Load() == 0 {
		t.Fatalf("nothing admitted under stress")
	}
}

func TestCostModel(t *testing.T) {
	var m CostModel
	if d := m.Estimate(0); d != 0 {
		t.Fatalf("Estimate(0) = %v, want 0", d)
	}
	// Uncalibrated: 1 GFlop at the pessimistic 1 GFlop/s seed ≈ 1s.
	if d := m.Estimate(1e9); d < 500*time.Millisecond || d > 2*time.Second {
		t.Fatalf("uncalibrated Estimate(1e9) = %v, want ~1s", d)
	}
	// Observe a 10 GFlop/s machine repeatedly; estimates must converge down.
	for i := 0; i < 32; i++ {
		m.Observe(1e9, 100*time.Millisecond)
	}
	if d := m.Estimate(1e9); d > 200*time.Millisecond {
		t.Fatalf("calibrated Estimate(1e9) = %v, want <= 200ms", d)
	}
	m.Observe(0, time.Second)  // ignored
	m.Observe(1e9, 0)          // ignored
	m.Observe(1, time.Nanosecond)
	if d := m.Estimate(1e9); d <= 0 {
		t.Fatalf("estimate collapsed to %v", d)
	}
}

func TestRejectionIsError(t *testing.T) {
	var err error = &Rejection{Status: 429, Code: "queue_full", Message: "full"}
	if err.Error() != "full" {
		t.Fatalf("Error() = %q", err.Error())
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		StateOK: "ok", StateShed: "shed-low-priority",
		StateReject: "reject-new-factors", StateDrain: "drain",
	}
	for s, str := range want {
		if s.String() != str {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
	if Interactive.String() != "interactive" || Refactor.String() != "refactor" || Cold.String() != "cold" {
		t.Fatalf("priority strings wrong")
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not reached within 2s")
}
