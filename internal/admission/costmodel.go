package admission

import (
	"sync/atomic"
	"time"
)

// CostModel converts a plan's modeled flop count into a wall-clock cost
// estimate by tracking the service's observed factorization throughput as
// an EWMA of ns/flop. The plan already carries an exact operation count
// (etree.Stats.Flops, the same quantity the paper's §4 load model
// distributes); calibrating it against real executions turns it into the
// deadline-feasibility estimate the admission queue sheds against.
type CostModel struct {
	// nsPerGFlop is the EWMA, stored ×1e9 flops so the integer keeps
	// precision for fast machines (atomic; Estimate runs under the
	// admission lock's callers but Observe runs on completion paths).
	nsPerGFlop atomic.Int64
}

// defaultNsPerGFlop seeds the model near 1 GFlop/s — deliberately
// pessimistic (real kernels run much faster), so before calibration the
// model over-estimates cost and sheds conservatively rather than admitting
// work that cannot finish.
const defaultNsPerGFlop = 1e9

// Estimate returns the modeled execution time of flops floating-point
// operations, or 0 (unknown) when flops is not positive.
func (m *CostModel) Estimate(flops int64) time.Duration {
	if flops <= 0 {
		return 0
	}
	ns := m.nsPerGFlop.Load()
	if ns <= 0 {
		ns = defaultNsPerGFlop
	}
	return time.Duration(float64(flops) / 1e9 * float64(ns))
}

// Observe folds one completed execution into the EWMA (weight 1/4 to the
// new sample — factorizations are few, so the model should adapt fast).
func (m *CostModel) Observe(flops int64, took time.Duration) {
	if flops <= 0 || took <= 0 {
		return
	}
	sample := int64(float64(took) / float64(flops) * 1e9)
	if sample <= 0 {
		sample = 1
	}
	for {
		old := m.nsPerGFlop.Load()
		var next int64
		if old == 0 {
			next = sample
		} else {
			next = old + (sample-old)/4
		}
		if next <= 0 {
			next = 1
		}
		if m.nsPerGFlop.CompareAndSwap(old, next) {
			return
		}
	}
}
