// Package loadbal evaluates the paper's load-balance measures (§3.2) for a
// block structure under a given mapping:
//
//	overall balance  = work_total / (P · work_max)
//	row balance      = work_total / (P · workrowmax),
//	                   workrowmax = max_r Σ_{I: mapI[I]=r} workI[I] / Pc
//	column balance   = analogous over processor columns
//	diagonal balance = work_total / (P · workdiagmax),
//	                   workdiagmax = max_d Σ_{(I,J)∈D_d} work[I,J] / Pc,
//	                   D_d = {(I,J): (mapI[I]−mapJ[J]) mod Pr = d}
//
// Overall balance is an upper bound on achievable parallel efficiency; the
// row/column/diagonal balances isolate the contribution of work skew across
// processor rows, columns, and generalized diagonals.
package loadbal

import (
	"blockfanout/internal/blocks"
	"blockfanout/internal/mapping"
)

// Balances holds the four efficiency bounds of the paper's Tables 2 and 3.
type Balances struct {
	Overall, Row, Col, Diag float64
}

// ProcLoads returns the work assigned to each processor under the mapping.
// baseLoad, if non-nil, seeds each processor with additional work (used for
// the 1-D mapped domain portion); it is not modified.
func ProcLoads(bs *blocks.Structure, m *mapping.Mapping, baseLoad []int64) []int64 {
	loads := make([]int64, m.Grid.P())
	copy(loads, baseLoad)
	for j := range bs.Cols {
		for bi := range bs.Cols[j].Blocks {
			b := &bs.Cols[j].Blocks[bi]
			loads[m.Owner(b.I, j)] += b.Work
		}
	}
	return loads
}

// Compute evaluates all four balance measures.
func Compute(bs *blocks.Structure, m *mapping.Mapping) Balances {
	g := m.Grid
	p := g.P()
	total := bs.TotalWork

	procLoad := make([]int64, p)
	rowLoad := make([]int64, g.Pr)
	colLoad := make([]int64, g.Pc)
	diagLoad := make([]int64, g.Pr)
	for j := range bs.Cols {
		c := m.MapJ[j]
		for bi := range bs.Cols[j].Blocks {
			b := &bs.Cols[j].Blocks[bi]
			r := m.MapI[b.I]
			procLoad[g.ProcID(r, c)] += b.Work
			rowLoad[r] += b.Work
			colLoad[c] += b.Work
			d := (r - c) % g.Pr
			if d < 0 {
				d += g.Pr
			}
			diagLoad[d] += b.Work
		}
	}
	maxOf := func(xs []int64) int64 {
		var mx int64
		for _, x := range xs {
			if x > mx {
				mx = x
			}
		}
		return mx
	}
	ratio := func(denom float64) float64 {
		if denom <= 0 {
			return 1
		}
		v := float64(total) / denom
		if v > 1 {
			v = 1
		}
		return v
	}
	fp := float64(p)
	return Balances{
		Overall: ratio(fp * float64(maxOf(procLoad))),
		Row:     ratio(fp * float64(maxOf(rowLoad)) / float64(g.Pc)),
		Col:     ratio(fp * float64(maxOf(colLoad)) / float64(g.Pr)),
		Diag:    ratio(fp * float64(maxOf(diagLoad)) / float64(g.Pc)),
	}
}

// OverallOf computes the overall balance for an arbitrary block-ownership
// function (used for the §2.4 general mappings, which have no row/column
// structure for the directional measures to apply to).
func OverallOf(bs *blocks.Structure, p int, owner func(i, j int) int) float64 {
	loads := make([]int64, p)
	for j := range bs.Cols {
		for bi := range bs.Cols[j].Blocks {
			b := &bs.Cols[j].Blocks[bi]
			loads[owner(b.I, j)] += b.Work
		}
	}
	var mx int64
	for _, l := range loads {
		if l > mx {
			mx = l
		}
	}
	if mx == 0 {
		return 1
	}
	v := float64(bs.TotalWork) / (float64(p) * float64(mx))
	if v > 1 {
		v = 1
	}
	return v
}

// OverallWithBase computes the overall balance when each processor carries
// an extra base load (the 1-D mapped domain work): total work is the block
// work plus the summed base loads.
func OverallWithBase(bs *blocks.Structure, m *mapping.Mapping, baseLoad []int64) float64 {
	loads := ProcLoads(bs, m, baseLoad)
	total := bs.TotalWork
	for _, b := range baseLoad {
		total += b
	}
	var mx int64
	for _, l := range loads {
		if l > mx {
			mx = l
		}
	}
	if mx == 0 {
		return 1
	}
	v := float64(total) / (float64(len(loads)) * float64(mx))
	if v > 1 {
		v = 1
	}
	return v
}
