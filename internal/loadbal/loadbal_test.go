package loadbal

import (
	"testing"

	"blockfanout/internal/blocks"
	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

func structureFor(t *testing.T, m *sparse.Matrix, method ord.Method, gridDim, b int) *blocks.Structure {
	t.Helper()
	p, err := ord.Compute(method, m, gridDim)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	po := etree.Build(m1).Postorder()
	m2, err := m1.Permute(po)
	if err != nil {
		t.Fatal(err)
	}
	st, err := symbolic.Analyze(m2, symbolic.DefaultAmalgamation())
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blocks.Build(st, blocks.NewPartition(st, b))
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

func TestBalancesInUnitRange(t *testing.T) {
	bs := structureFor(t, gen.IrregularMesh(300, 5, 3, 5), ord.MinDegree, 0, 8)
	g := mapping.Grid{Pr: 4, Pc: 4}
	for _, m := range []*mapping.Mapping{
		mapping.Cyclic(g, bs.N()),
		mapping.New(g, mapping.DW, mapping.DW, bs, nil),
	} {
		b := Compute(bs, m)
		for name, v := range map[string]float64{
			"overall": b.Overall, "row": b.Row, "col": b.Col, "diag": b.Diag,
		} {
			if v <= 0 || v > 1 {
				t.Fatalf("%s balance %g out of (0,1]", name, v)
			}
		}
		// The coarse measures bound the overall balance from above.
		if b.Overall > b.Row+1e-12 || b.Overall > b.Col+1e-12 || b.Overall > b.Diag+1e-12 {
			t.Fatalf("overall %g exceeds a coarse bound %+v", b.Overall, b)
		}
	}
}

func TestSingleProcessorPerfectBalance(t *testing.T) {
	bs := structureFor(t, gen.Grid2D(10), ord.NDGrid2D, 10, 4)
	g := mapping.Grid{Pr: 1, Pc: 1}
	b := Compute(bs, mapping.Cyclic(g, bs.N()))
	if b.Overall != 1 || b.Row != 1 || b.Col != 1 || b.Diag != 1 {
		t.Fatalf("P=1 balances %+v, want all 1", b)
	}
}

func TestProcLoadsSumToTotal(t *testing.T) {
	bs := structureFor(t, gen.Grid2D(12), ord.NDGrid2D, 12, 4)
	g := mapping.Grid{Pr: 3, Pc: 3}
	m := mapping.Cyclic(g, bs.N())
	loads := ProcLoads(bs, m, nil)
	var sum int64
	for _, l := range loads {
		sum += l
	}
	if sum != bs.TotalWork {
		t.Fatalf("proc loads sum %d != total %d", sum, bs.TotalWork)
	}
	// Base loads shift every processor.
	base := make([]int64, g.P())
	for i := range base {
		base[i] = 100
	}
	loads2 := ProcLoads(bs, m, base)
	for i := range loads2 {
		if loads2[i] != loads[i]+100 {
			t.Fatal("base load not applied")
		}
	}
}

func TestOverallWithBase(t *testing.T) {
	bs := structureFor(t, gen.Grid2D(12), ord.NDGrid2D, 12, 4)
	g := mapping.Grid{Pr: 3, Pc: 3}
	m := mapping.Cyclic(g, bs.N())
	plain := Compute(bs, m).Overall
	// Zero base load must agree with Compute.
	if got := OverallWithBase(bs, m, make([]int64, g.P())); got != plain {
		t.Fatalf("OverallWithBase(0)=%g, Compute=%g", got, plain)
	}
	// A huge uniform base load pushes balance toward 1.
	base := make([]int64, g.P())
	for i := range base {
		base[i] = bs.TotalWork * 10
	}
	if got := OverallWithBase(bs, m, base); got < plain {
		t.Fatalf("uniform base load lowered balance: %g < %g", got, plain)
	}
}

func TestDiagonalImbalanceOfSymmetricCyclic(t *testing.T) {
	// The paper's §3 structural claim: for an SC (symmetric Cartesian)
	// cyclic mapping, diagonal balance is markedly below column balance,
	// and breaking the symmetry (independent row map) repairs it.
	bs := structureFor(t, gen.IrregularMesh(500, 6, 3, 77), ord.MinDegree, 0, 8)
	g := mapping.Grid{Pr: 8, Pc: 8}
	cy := Compute(bs, mapping.Cyclic(g, bs.N()))
	dw := Compute(bs, mapping.New(g, mapping.DW, mapping.DW, bs, nil))
	if cy.Diag >= dw.Diag {
		t.Fatalf("heuristic did not improve diagonal balance: %g vs %g", cy.Diag, dw.Diag)
	}
	if dw.Overall <= cy.Overall {
		t.Fatalf("heuristic did not improve overall balance: %g vs %g", dw.Overall, cy.Overall)
	}
}
