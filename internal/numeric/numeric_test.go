package numeric

import (
	"math"
	"testing"

	"blockfanout/internal/blocks"
	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

// setup permutes, postorders, analyzes, and blocks a matrix, returning the
// block structure and the permuted matrix.
func setup(t *testing.T, m *sparse.Matrix, method ord.Method, gridDim, b int) (*blocks.Structure, *sparse.Matrix) {
	t.Helper()
	p, err := ord.Compute(method, m, gridDim)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	po := etree.Build(m1).Postorder()
	m2, err := m1.Permute(po)
	if err != nil {
		t.Fatal(err)
	}
	st, err := symbolic.Analyze(m2, symbolic.DefaultAmalgamation())
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blocks.Build(st, blocks.NewPartition(st, b))
	if err != nil {
		t.Fatal(err)
	}
	return bs, m2
}

// denseCholesky is the reference factorization of a full matrix.
func denseCholesky(a [][]float64) [][]float64 {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		d := a[j][j]
		for k := 0; k < j; k++ {
			d -= l[j][k] * l[j][k]
		}
		d = math.Sqrt(d)
		l[j][j] = d
		for i := j + 1; i < n; i++ {
			s := a[i][j]
			for k := 0; k < j; k++ {
				s -= l[i][k] * l[j][k]
			}
			l[i][j] = s / d
		}
	}
	return l
}

func TestScatterRoundTrip(t *testing.T) {
	m := gen.Grid2D(9)
	bs, pm := setup(t, m, ord.NDGrid2D, 9, 4)
	f, err := New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	// Every A entry must be present at the right block position.
	part := bs.Part
	for j := 0; j < pm.N; j++ {
		pj := part.PanelOf[j]
		lc := j - part.Start[pj]
		w := part.Width(pj)
		for q := pm.ColPtr[j]; q < pm.ColPtr[j+1]; q++ {
			i := pm.RowInd[q]
			blk := bs.Find(part.PanelOf[i], pj)
			if blk == nil {
				t.Fatalf("A(%d,%d) has no block", i, j)
			}
			lr := searchRows(blk.Rows, i)
			bi := 0
			for k := range bs.Cols[pj].Blocks {
				if &bs.Cols[pj].Blocks[k] == blk {
					bi = k
				}
			}
			if got := f.Data[pj][bi][lr*w+lc]; got != pm.Val[q] {
				t.Fatalf("A(%d,%d)=%g scattered as %g", i, j, pm.Val[q], got)
			}
		}
	}
}

func TestFactorMatchesDenseReference(t *testing.T) {
	m := gen.IrregularMesh(60, 4, 3, 19)
	bs, pm := setup(t, m, ord.MinDegree, 0, 5)
	f, err := New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FactorSequential(); err != nil {
		t.Fatal(err)
	}
	ref := denseCholesky(pm.Dense())
	part := bs.Part
	for j := range bs.Cols {
		w := part.Width(j)
		for bi, blk := range bs.Cols[j].Blocks {
			data := f.Data[j][bi]
			for s, grow := range blk.Rows {
				for c := 0; c < w; c++ {
					gcol := part.Start[j] + c
					if grow < gcol {
						continue // upper triangle of diagonal block
					}
					got := data[s*w+c]
					want := ref[grow][gcol]
					if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
						t.Fatalf("L(%d,%d)=%g, want %g", grow, gcol, got, want)
					}
				}
			}
		}
	}
}

func TestSolveResidual(t *testing.T) {
	for _, tc := range []struct {
		name    string
		m       *sparse.Matrix
		method  ord.Method
		gridDim int
		b       int
	}{
		{"grid", gen.Grid2D(13), ord.NDGrid2D, 13, 6},
		{"cube", gen.Cube3D(5), ord.NDCube3D, 5, 8},
		{"mesh", gen.IrregularMesh(150, 5, 3, 3), ord.MinDegree, 0, 7},
		{"dense", gen.Dense(40), ord.Natural, 0, 9},
		{"lp", gen.NormalEq(100, 3, 2, 10, 4), ord.MinDegree, 0, 6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bs, pm := setup(t, tc.m, tc.method, tc.gridDim, tc.b)
			f, err := New(bs, pm)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.FactorSequential(); err != nil {
				t.Fatal(err)
			}
			b := make([]float64, pm.N)
			for i := range b {
				b[i] = math.Sin(float64(i))
			}
			x := f.Solve(b)
			if r := pm.ResidualNorm(x, b); r > 1e-8 {
				t.Fatalf("residual %g", r)
			}
		})
	}
}

func TestNotPositiveDefinite(t *testing.T) {
	// Make a grid matrix indefinite by zeroing a diagonal entry.
	m := gen.Grid2D(6)
	bs, pm := setup(t, m, ord.NDGrid2D, 6, 4)
	pm.Val[pm.ColPtr[7]] = -100 // diagonal of column 7
	f, err := New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FactorSequential(); err == nil {
		t.Fatal("expected not-positive-definite error")
	}
}

func TestNNZConsistentWithStructure(t *testing.T) {
	m := gen.IrregularMesh(200, 5, 3, 9)
	bs, pm := setup(t, m, ord.MinDegree, 0, 8)
	f, err := New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for j := range bs.Cols {
		w := int64(bs.Part.Width(j))
		want += w * (w - 1) / 2
		for bi := 1; bi < len(bs.Cols[j].Blocks); bi++ {
			want += int64(len(bs.Cols[j].Blocks[bi].Rows)) * w
		}
	}
	if f.NNZ() != want {
		t.Fatalf("NNZ=%d, want %d", f.NNZ(), want)
	}
}

func TestNewRejectsMismatchedMatrix(t *testing.T) {
	m := gen.Grid2D(6)
	bs, _ := setup(t, m, ord.NDGrid2D, 6, 4)
	other := gen.Grid2D(7)
	if _, err := New(bs, other); err == nil {
		t.Fatal("accepted matrix of wrong size")
	}
}

func TestBMODRejectsBadOrder(t *testing.T) {
	m := gen.Grid2D(8)
	bs, pm := setup(t, m, ord.NDGrid2D, 8, 4)
	f, err := New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	// Find a column with two off-diagonal blocks and call BMOD with the
	// sources swapped (I < J must error).
	for k := range bs.Cols {
		if len(bs.Cols[k].Blocks) >= 3 {
			if err := f.BMOD(k, 1, 2, new(Workspace)); err == nil {
				t.Fatal("BMOD accepted I < J")
			}
			return
		}
	}
	t.Skip("no column with two off-diagonal blocks")
}

func TestSolveNMatchesSolve(t *testing.T) {
	m := gen.IrregularMesh(200, 5, 3, 71)
	bs, pm := setup(t, m, ord.MinDegree, 0, 8)
	f, err := New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FactorSequential(); err != nil {
		t.Fatal(err)
	}
	rhs := make([][]float64, 4)
	for r := range rhs {
		rhs[r] = make([]float64, pm.N)
		for i := range rhs[r] {
			rhs[r][i] = math.Sin(float64(i*(r+1)) * 0.31)
		}
	}
	batch := f.SolveN(rhs)
	for r := range rhs {
		single := f.Solve(rhs[r])
		for i := range single {
			if batch[r][i] != single[i] {
				t.Fatalf("rhs %d differs at %d: %g vs %g", r, i, batch[r][i], single[i])
			}
		}
		// Inputs untouched.
		if rhs[r][0] != math.Sin(0) {
			t.Fatal("rhs modified")
		}
	}
}
