// Package numeric stores and computes the numeric Cholesky factor over a
// block structure. It provides the block-level operation executors shared
// by the sequential driver (this package) and the parallel block fan-out
// driver (package fanout), plus forward/backward triangular solves.
package numeric

import (
	"errors"
	"fmt"

	"blockfanout/internal/blocks"
	"blockfanout/internal/kernels"
	"blockfanout/internal/sparse"
)

// Factor holds the numeric data of every block of L. Data[j][bi] is the
// dense storage of bs.Cols[j].Blocks[bi]: w×w row-major for the diagonal
// block (bi == 0), r×w row-major for off-diagonal blocks.
type Factor struct {
	BS   *blocks.Structure
	Data [][][]float64
	// scatter maps each nonzero position p of the matrix the factor was
	// built from to its destination slot in Data — the precomputed symbolic
	// half of the scatter, which is what lets Reload refill the factor with
	// new numeric values without touching the block structure.
	scatter []scatterRef
}

// scatterRef addresses one Data slot: Data[J][BI][Off].
type scatterRef struct {
	J, BI, Off int32
}

// New allocates the factor and scatters the (permuted) matrix a into it.
// a must be the same matrix the block structure was built from.
func New(bs *blocks.Structure, a *sparse.Matrix) (*Factor, error) {
	if a.N != len(bs.Part.PanelOf) {
		return nil, fmt.Errorf("numeric: matrix n=%d does not match partition n=%d", a.N, len(bs.Part.PanelOf))
	}
	f := &Factor{
		BS:      bs,
		Data:    make([][][]float64, bs.N()),
		scatter: make([]scatterRef, a.NNZ()),
	}
	part := bs.Part
	for j := range bs.Cols {
		w := part.Width(j)
		col := &bs.Cols[j]
		f.Data[j] = make([][]float64, len(col.Blocks))
		for bi := range col.Blocks {
			r := len(col.Blocks[bi].Rows)
			f.Data[j][bi] = make([]float64, r*w)
		}
	}
	// Scatter A's lower triangle, recording each entry's destination.
	for gcol := 0; gcol < a.N; gcol++ {
		j := part.PanelOf[gcol]
		lc := gcol - part.Start[j]
		w := part.Width(j)
		col := &bs.Cols[j]
		bi := 0
		for p := a.ColPtr[gcol]; p < a.ColPtr[gcol+1]; p++ {
			grow := a.RowInd[p]
			rowPanel := part.PanelOf[grow]
			// Advance to the block holding rowPanel (rows are sorted, so
			// entries visit blocks in increasing order).
			for bi < len(col.Blocks) && col.Blocks[bi].I < rowPanel {
				bi++
			}
			if bi >= len(col.Blocks) || col.Blocks[bi].I != rowPanel {
				return nil, fmt.Errorf("numeric: A(%d,%d) falls outside block structure", grow, gcol)
			}
			b := &col.Blocks[bi]
			lr := searchRows(b.Rows, grow)
			if lr < 0 {
				return nil, fmt.Errorf("numeric: row %d missing from block (%d,%d)", grow, b.I, j)
			}
			f.Data[j][bi][lr*w+lc] = a.Val[p]
			f.scatter[p] = scatterRef{J: int32(j), BI: int32(bi), Off: int32(lr*w + lc)}
		}
	}
	return f, nil
}

// Reload refills the factor's block storage with new numeric values and
// leaves it ready to be factored again. values must be laid out exactly
// like the Val slice of the matrix the factor was built from (same
// pattern, same CSC entry order). The symbolic work — block structure,
// row lists, scatter destinations — is all reused; the call performs no
// allocation.
func (f *Factor) Reload(values []float64) error {
	if f.scatter == nil {
		return fmt.Errorf("numeric: factor was not built by New; cannot Reload")
	}
	if len(values) != len(f.scatter) {
		return fmt.Errorf("numeric: Reload got %d values, factor holds %d nonzeros", len(values), len(f.scatter))
	}
	for j := range f.Data {
		for bi := range f.Data[j] {
			d := f.Data[j][bi]
			for i := range d {
				d[i] = 0
			}
		}
	}
	for p := range f.scatter {
		s := &f.scatter[p]
		f.Data[s.J][s.BI][s.Off] = values[p]
	}
	return nil
}

// ReloadWhere restores original values into every block for which keep
// returns false, leaving kept blocks' current (factored) data untouched.
// The cluster's failover restart uses it: blocks completed before a node
// died keep their final values, everything else reverts to the matrix and
// is refactored in the next epoch. keep receives the block's column j and
// its index bi within the column.
func (f *Factor) ReloadWhere(values []float64, keep func(j, bi int) bool) error {
	if f.scatter == nil {
		return fmt.Errorf("numeric: factor was not built by New; cannot Reload")
	}
	if len(values) != len(f.scatter) {
		return fmt.Errorf("numeric: Reload got %d values, factor holds %d nonzeros", len(values), len(f.scatter))
	}
	for j := range f.Data {
		for bi := range f.Data[j] {
			if keep(j, bi) {
				continue
			}
			d := f.Data[j][bi]
			for i := range d {
				d[i] = 0
			}
		}
	}
	for p := range f.scatter {
		s := &f.scatter[p]
		if keep(int(s.J), int(s.BI)) {
			continue
		}
		f.Data[s.J][s.BI][s.Off] = values[p]
	}
	return nil
}

// searchRows returns the position of g in the sorted slice rows, or -1.
func searchRows(rows []int, g int) int {
	lo, hi := 0, len(rows)
	for lo < hi {
		mid := (lo + hi) / 2
		if rows[mid] < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(rows) && rows[lo] == g {
		return lo
	}
	return -1
}

// pivotAt rewrites a kernel-level pivot breakdown into factor coordinates:
// Block becomes the panel index and Row the global (permuted) row, so the
// error that propagates to callers names the exact failure site. Non-pivot
// errors are wrapped with the operation context instead.
func pivotAt(err error, k, start int, op string) error {
	var pe *kernels.PivotError
	if errors.As(err, &pe) {
		return &kernels.PivotError{Block: k, Row: start + pe.Row, Pivot: pe.Pivot}
	}
	return fmt.Errorf("numeric: %s: %w", op, err)
}

// BFAC factors the diagonal block of panel k in place. A numerical
// breakdown surfaces as a *kernels.PivotError carrying the panel index and
// global row of the offending pivot.
func (f *Factor) BFAC(k int) error {
	w := f.BS.Part.Width(k)
	if err := kernels.Cholesky(f.Data[k][0], w); err != nil {
		return pivotAt(err, k, f.BS.Part.Start[k], fmt.Sprintf("BFAC(%d)", k))
	}
	return nil
}

// BDIV applies the factored diagonal block of panel k to off-diagonal
// block bi of column k: L_IK ← L_IK · L_KK⁻ᵀ. A broken-down diagonal
// (non-positive, NaN, or Inf pivot) yields a *kernels.PivotError instead of
// silently dividing NaN into the factor.
func (f *Factor) BDIV(k, bi int) error {
	w := f.BS.Part.Width(k)
	r := len(f.BS.Cols[k].Blocks[bi].Rows)
	if err := kernels.SolveRight(f.Data[k][bi], r, f.Data[k][0], w); err != nil {
		return pivotAt(err, k, f.BS.Part.Start[k], fmt.Sprintf("BDIV(%d,%d)", k, bi))
	}
	return nil
}

// Workspace holds the per-executor scratch of BMOD: the destination index
// maps relRow/relCol. Each parallel processor (and the sequential driver)
// owns one Workspace, replacing the ad-hoc threading of the two slices
// through every call; Reserve lets executors preallocate once so the
// factorization hot path never allocates.
type Workspace struct {
	relRow, relCol []int
}

// Reserve grows the index scratch to hold destinations of up to r rows.
func (ws *Workspace) Reserve(r int) {
	if cap(ws.relRow) < r {
		ws.relRow = make([]int, r)
	}
	if cap(ws.relCol) < r {
		ws.relCol = make([]int, r)
	}
}

// MaxBlockRows returns the largest row count of any block of the factor —
// the Workspace.Reserve bound that makes every BMOD allocation-free.
func (f *Factor) MaxBlockRows() int {
	max := 0
	for j := range f.BS.Cols {
		for _, blk := range f.BS.Cols[j].Blocks {
			if len(blk.Rows) > max {
				max = len(blk.Rows)
			}
		}
	}
	return max
}

// BMOD applies the update L_IJ ← L_IJ − L_IK·L_JKᵀ, where the sources are
// blocks ia (the I side) and jb (the J side) of column k, with
// Blocks[ia].I ≥ Blocks[jb].I. ws supplies the index scratch, reused
// across calls.
//
// While building the index maps BMOD classifies the destination once per
// (k, ia, jb) pairing: when the source rows land in consecutive
// destination rows and columns the update dispatches to the
// no-indirection contiguous kernel, otherwise to the scattered (or, for
// diagonal destinations, lower-masked) kernel.
func (f *Factor) BMOD(k, ia, jb int, ws *Workspace) error {
	colK := &f.BS.Cols[k]
	srcA, srcB := &colK.Blocks[ia], &colK.Blocks[jb]
	destI, destJ := srcA.I, srcB.I
	if destI < destJ {
		return fmt.Errorf("numeric: BMOD sources out of order (I=%d < J=%d)", destI, destJ)
	}
	part := f.BS.Part
	destCol := &f.BS.Cols[destJ]
	dbi := findBlock(destCol, destI)
	if dbi < 0 {
		return fmt.Errorf("numeric: BMOD dest (%d,%d) missing", destI, destJ)
	}
	dest := &destCol.Blocks[dbi]
	wK := part.Width(k)
	wJ := part.Width(destJ)
	ra, rb := len(srcA.Rows), len(srcB.Rows)

	// relRow[s]: position of srcA.Rows[s] in dest.Rows (merge of two
	// sorted lists). relCol[t]: srcB.Rows[t] − Start[destJ]. Contiguity of
	// each map is detected here, fused into the same pass that builds it.
	ws.Reserve(ra)
	ws.Reserve(rb)
	relRow := ws.relRow[:ra]
	relCol := ws.relCol[:rb]
	rowContig := true
	d := 0
	for s, g := range srcA.Rows {
		for d < len(dest.Rows) && dest.Rows[d] < g {
			d++
		}
		if d >= len(dest.Rows) || dest.Rows[d] != g {
			return fmt.Errorf("numeric: BMOD row %d of source (%d,%d) missing from dest (%d,%d)", g, destI, k, destI, destJ)
		}
		relRow[s] = d
		rowContig = rowContig && d == relRow[0]+s
	}
	start := part.Start[destJ]
	colContig := true
	for t, g := range srcB.Rows {
		relCol[t] = g - start
		colContig = colContig && g-start == relCol[0]+t
	}
	cd := f.Data[destJ][dbi]
	switch {
	case destI == destJ:
		kernels.MulSubLower(cd, wJ, f.Data[k][ia], ra, f.Data[k][jb], rb, wK,
			relRow, relCol, srcA.Rows, srcB.Rows)
	case rowContig && colContig:
		kernels.MulSubContig(cd[relRow[0]*wJ+relCol[0]:], wJ,
			f.Data[k][ia], ra, f.Data[k][jb], rb, wK)
	default:
		kernels.MulSubScattered(cd, wJ, f.Data[k][ia], ra, f.Data[k][jb], rb, wK,
			relRow, relCol)
	}
	return nil
}

func findBlock(col *blocks.BlockCol, i int) int {
	lo, hi := 0, len(col.Blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if col.Blocks[mid].I < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(col.Blocks) && col.Blocks[lo].I == i {
		return lo
	}
	return -1
}

// FactorSequential runs the right-looking block factorization on a single
// processor — the paper's baseline t_seq measurement uses exactly this
// "parallel algorithm on one processor".
func (f *Factor) FactorSequential() error {
	var ws Workspace
	ws.Reserve(f.MaxBlockRows())
	for k := 0; k < f.BS.N(); k++ {
		if err := f.BFAC(k); err != nil {
			return err
		}
		col := &f.BS.Cols[k]
		for bi := 1; bi < len(col.Blocks); bi++ {
			if err := f.BDIV(k, bi); err != nil {
				return err
			}
		}
		for jb := 1; jb < len(col.Blocks); jb++ {
			for ia := jb; ia < len(col.Blocks); ia++ {
				if err := f.BMOD(k, ia, jb, &ws); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Solve solves L·Lᵀ·x = b in the permuted index space, overwriting and
// returning x (b is not modified).
func (f *Factor) Solve(b []float64) []float64 {
	part := f.BS.Part
	x := append([]float64(nil), b...)
	n := f.BS.N()
	// Forward: L·y = b.
	for k := 0; k < n; k++ {
		w := part.Width(k)
		start := part.Start[k]
		seg := x[start : start+w]
		kernels.ForwardSolveDiag(f.Data[k][0], w, seg)
		col := &f.BS.Cols[k]
		for bi := 1; bi < len(col.Blocks); bi++ {
			blk := &col.Blocks[bi]
			data := f.Data[k][bi]
			for s, g := range blk.Rows {
				row := data[s*w : s*w+w]
				var sum float64
				for t := 0; t < w; t++ {
					sum += row[t] * seg[t]
				}
				x[g] -= sum
			}
		}
	}
	// Backward: Lᵀ·x = y.
	for k := n - 1; k >= 0; k-- {
		w := part.Width(k)
		start := part.Start[k]
		seg := x[start : start+w]
		col := &f.BS.Cols[k]
		for bi := 1; bi < len(col.Blocks); bi++ {
			blk := &col.Blocks[bi]
			data := f.Data[k][bi]
			for s, g := range blk.Rows {
				row := data[s*w : s*w+w]
				xg := x[g]
				for t := 0; t < w; t++ {
					seg[t] -= row[t] * xg
				}
			}
		}
		kernels.BackSolveDiag(f.Data[k][0], w, seg)
	}
	return x
}

// SolveN solves L·Lᵀ·X = B for several right-hand sides in one pair of
// sweeps over the factor: each block is loaded once and applied to every
// vector, which is substantially more cache-friendly than repeated Solve
// calls when nrhs is large. B is not modified.
func (f *Factor) SolveN(bs [][]float64) [][]float64 {
	part := f.BS.Part
	n := f.BS.N()
	xs := make([][]float64, len(bs))
	for r := range bs {
		xs[r] = append([]float64(nil), bs[r]...)
	}
	for k := 0; k < n; k++ {
		w := part.Width(k)
		start := part.Start[k]
		diag := f.Data[k][0]
		col := &f.BS.Cols[k]
		for _, x := range xs {
			seg := x[start : start+w]
			kernels.ForwardSolveDiag(diag, w, seg)
			for bi := 1; bi < len(col.Blocks); bi++ {
				blk := &col.Blocks[bi]
				data := f.Data[k][bi]
				for s, g := range blk.Rows {
					row := data[s*w : s*w+w]
					var sum float64
					for t := 0; t < w; t++ {
						sum += row[t] * seg[t]
					}
					x[g] -= sum
				}
			}
		}
	}
	for k := n - 1; k >= 0; k-- {
		w := part.Width(k)
		start := part.Start[k]
		diag := f.Data[k][0]
		col := &f.BS.Cols[k]
		for _, x := range xs {
			seg := x[start : start+w]
			for bi := 1; bi < len(col.Blocks); bi++ {
				blk := &col.Blocks[bi]
				data := f.Data[k][bi]
				for s, g := range blk.Rows {
					row := data[s*w : s*w+w]
					xg := x[g]
					for t := 0; t < w; t++ {
						seg[t] -= row[t] * xg
					}
				}
			}
			kernels.BackSolveDiag(diag, w, seg)
		}
	}
	return xs
}

// NNZ returns the number of explicitly stored factor entries excluding the
// diagonal (matching the paper's "NZ in L" convention applied to the
// relaxed block structure).
func (f *Factor) NNZ() int64 {
	var nz int64
	for j := range f.BS.Cols {
		w := int64(f.BS.Part.Width(j))
		for bi, blk := range f.BS.Cols[j].Blocks {
			if bi == 0 {
				nz += w * (w - 1) / 2
			} else {
				nz += int64(len(blk.Rows)) * w
			}
		}
	}
	return nz
}

// ExportBlocks copies every block's dense payload out of the factor in
// (column, block-index) order — the canonical flattening the snapshot
// store persists. The copies are private: later factorizations or reloads
// cannot mutate an exported snapshot under a concurrent writer. All block
// copies share one backing array: the export runs on the request path
// (under the factor entry's lock), and one large allocation plus straight
// memcpy is severalfold cheaper than thousands of per-block allocations.
func (f *Factor) ExportBlocks() [][]float64 {
	var nblk, nval int
	for j := range f.Data {
		nblk += len(f.Data[j])
		for bi := range f.Data[j] {
			nval += len(f.Data[j][bi])
		}
	}
	out := make([][]float64, 0, nblk)
	buf := make([]float64, nval)
	for j := range f.Data {
		for bi := range f.Data[j] {
			n := copy(buf, f.Data[j][bi])
			out = append(out, buf[:n:n])
			buf = buf[n:]
		}
	}
	return out
}

// ImportBlocks copies snapshotted block payloads back into the factor, in
// the same (column, block-index) order ExportBlocks produced. Every
// block's length must match the factor's structure exactly — a snapshot
// from a differently-partitioned plan is rejected rather than silently
// truncated.
func (f *Factor) ImportBlocks(blocks [][]float64) error {
	k := 0
	for j := range f.Data {
		for bi := range f.Data[j] {
			if k >= len(blocks) {
				return fmt.Errorf("numeric: snapshot holds %d blocks, factor has more", len(blocks))
			}
			dst := f.Data[j][bi]
			if len(blocks[k]) != len(dst) {
				return fmt.Errorf("numeric: snapshot block %d has %d entries, factor block (%d,%d) holds %d",
					k, len(blocks[k]), j, bi, len(dst))
			}
			copy(dst, blocks[k])
			k++
		}
	}
	if k != len(blocks) {
		return fmt.Errorf("numeric: snapshot holds %d blocks, factor has %d", len(blocks), k)
	}
	return nil
}
