package numeric

import (
	"math"
	"testing"

	"blockfanout/internal/gen"
	ord "blockfanout/internal/order"
)

// TestReloadMatchesFresh checks that factoring after Reload with new values
// produces exactly the factor a from-scratch New would, and that reloading
// the original values restores the original factor.
func TestReloadMatchesFresh(t *testing.T) {
	m := gen.IrregularMesh(180, 5, 3, 11)
	bs, pm := setup(t, m, ord.MinDegree, 0, 8)

	f, err := New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FactorSequential(); err != nil {
		t.Fatal(err)
	}

	// New values on the same pattern: scale off-diagonals, keep diagonal
	// dominance.
	pm2 := pm.Clone()
	for j := 0; j < pm2.N; j++ {
		for p := pm2.ColPtr[j]; p < pm2.ColPtr[j+1]; p++ {
			if pm2.RowInd[p] != j {
				pm2.Val[p] *= 0.5
			}
		}
	}

	if err := f.Reload(pm2.Val); err != nil {
		t.Fatal(err)
	}
	if err := f.FactorSequential(); err != nil {
		t.Fatal(err)
	}

	fresh, err := New(bs, pm2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.FactorSequential(); err != nil {
		t.Fatal(err)
	}
	for j := range f.Data {
		for bi := range f.Data[j] {
			for i, v := range f.Data[j][bi] {
				if w := fresh.Data[j][bi][i]; v != w && math.Abs(v-w) > 1e-14*math.Abs(w) {
					t.Fatalf("block (%d,%d)[%d]: reloaded %g vs fresh %g", j, bi, i, v, w)
				}
			}
		}
	}
}

func TestReloadErrors(t *testing.T) {
	m := gen.Grid2D(7)
	bs, pm := setup(t, m, ord.NDGrid2D, 7, 4)
	f, err := New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Reload(pm.Val[:len(pm.Val)-1]); err == nil {
		t.Fatal("Reload accepted a short value slice")
	}
	bare := &Factor{BS: bs}
	if err := bare.Reload(pm.Val); err == nil {
		t.Fatal("Reload accepted a factor without a scatter map")
	}
}

// TestReloadAllocs pins the allocation-free contract of the reload path.
func TestReloadAllocs(t *testing.T) {
	m := gen.Grid2D(12)
	bs, pm := setup(t, m, ord.NDGrid2D, 12, 6)
	f, err := New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if err := f.Reload(pm.Val); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Reload allocated %.1f times per call; want 0", avg)
	}
}
