package est

import (
	"math"
	"testing"

	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sparse"
)

// diagMatrix builds diag(d).
func diagMatrix(t *testing.T, d []float64) *sparse.Matrix {
	t.Helper()
	var ts []sparse.Triplet
	for i, v := range d {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: v})
	}
	m, err := sparse.FromTriplets(len(d), ts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func solverFor(t *testing.T, m *sparse.Matrix) Solver {
	t.Helper()
	plan, err := core.NewPlan(m, core.Options{Ordering: ord.MinDegree, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	f, err := plan.FactorSequential()
	if err != nil {
		t.Fatal(err)
	}
	return f.Solve
}

func TestDiagonalEigenvalues(t *testing.T) {
	d := []float64{2, 9, 5, 1.5, 7, 3, 4, 8, 6, 2.5}
	m := diagMatrix(t, d)
	hi, err := LargestEigenvalue(m, 500, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hi-9) > 1e-6 {
		t.Fatalf("λmax=%g, want 9", hi)
	}
	lo, err := SmallestEigenvalue(m, solverFor(t, m), 500, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-1.5) > 1e-6 {
		t.Fatalf("λmin=%g, want 1.5", lo)
	}
	cond, err := Cond2(m, solverFor(t, m), 500, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cond-6) > 1e-4 {
		t.Fatalf("cond=%g, want 6", cond)
	}
}

func TestGridLaplacianBounds(t *testing.T) {
	// gen.Grid2D builds the GRAPH Laplacian plus identity, so its
	// smallest eigenvalue is exactly 1 (constant eigenvector) and its
	// largest is below 2·maxdegree + 1 = 9.
	m := gen.Grid2D(12)
	hi, err := LargestEigenvalue(m, 2000, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= 5 || hi >= 9 {
		t.Fatalf("λmax=%g outside (5,9)", hi)
	}
	lo, err := SmallestEigenvalue(m, solverFor(t, m), 2000, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-1) > 1e-6 {
		t.Fatalf("λmin=%g, want 1 (graph Laplacian + I)", lo)
	}
}

func TestNoConvergence(t *testing.T) {
	m := gen.Grid2D(10)
	if _, err := LargestEigenvalue(m, 2, 1e-14); err == nil {
		t.Fatal("expected ErrNoConvergence with 2 iterations")
	}
}
