// Package est provides cheap spectral estimates for SPD matrices: the
// largest eigenvalue by power iteration, the smallest via inverse iteration
// through a Cholesky factor, and the resulting 2-norm condition number
// estimate. Condition estimates tell a solver's user how many digits the
// computed solution can be trusted to (and when iterative refinement is
// worth its cost).
package est

import (
	"errors"
	"math"

	"blockfanout/internal/sparse"
)

// ErrNoConvergence is returned when the iteration stalls before reaching
// the requested tolerance.
var ErrNoConvergence = errors.New("est: iteration did not converge")

// Solver abstracts "solve A·x = b" for inverse iteration; core.Factor and
// the reference factors satisfy it via small adapters.
type Solver func(b []float64) ([]float64, error)

// LargestEigenvalue estimates λmax(A) by power iteration to relative
// tolerance tol (or maxIter iterations, whichever first). The returned
// error is ErrNoConvergence if tol was not met; the best estimate is still
// returned.
func LargestEigenvalue(a *sparse.Matrix, maxIter int, tol float64) (float64, error) {
	n := a.N
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	// Deterministic perturbation avoids starting orthogonal to the
	// dominant eigenvector on symmetric model problems.
	for i := range x {
		x[i] *= 1 + 0.01*float64(i%7)
	}
	prev := 0.0
	for it := 0; it < maxIter; it++ {
		y := a.MulVec(x)
		lambda := norm2(y)
		if lambda == 0 {
			return 0, nil
		}
		for i := range y {
			y[i] /= lambda
		}
		x = y
		if it > 0 && math.Abs(lambda-prev) <= tol*lambda {
			return lambda, nil
		}
		prev = lambda
	}
	return prev, ErrNoConvergence
}

// SmallestEigenvalue estimates λmin(A) by inverse power iteration using
// the provided solver.
func SmallestEigenvalue(a *sparse.Matrix, solve Solver, maxIter int, tol float64) (float64, error) {
	n := a.N
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 + 0.01*float64(i%5)
	}
	nrm := norm2(x)
	for i := range x {
		x[i] /= nrm
	}
	prev := 0.0
	for it := 0; it < maxIter; it++ {
		y, err := solve(x)
		if err != nil {
			return 0, err
		}
		mu := norm2(y) // ≈ 1/λmin
		if mu == 0 {
			return 0, ErrNoConvergence
		}
		for i := range y {
			y[i] /= mu
		}
		x = y
		lambda := 1 / mu
		if it > 0 && math.Abs(lambda-prev) <= tol*lambda {
			return lambda, nil
		}
		prev = lambda
	}
	return prev, ErrNoConvergence
}

// Cond2 estimates the 2-norm condition number λmax/λmin.
func Cond2(a *sparse.Matrix, solve Solver, maxIter int, tol float64) (float64, error) {
	hi, err1 := LargestEigenvalue(a, maxIter, tol)
	lo, err2 := SmallestEigenvalue(a, solve, maxIter, tol)
	if lo <= 0 {
		return math.Inf(1), ErrNoConvergence
	}
	cond := hi / lo
	if err1 != nil {
		return cond, err1
	}
	return cond, err2
}

func norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
