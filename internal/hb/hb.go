// Package hb reads and writes the Harwell-Boeing sparse matrix exchange
// format — the format the paper's benchmark matrices (BCSSTK15/29/31/33,
// from the Harwell-Boeing test set [Duff, Grimes & Lewis 1989]) were
// distributed in. Supported matrix types are RSA (real symmetric
// assembled) and PSA (pattern symmetric assembled); pattern files are
// assembled as diagonally dominant Laplacians so they stay positive
// definite, mirroring package mmio's convention.
package hb

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"blockfanout/internal/sparse"
)

// fortranFormat is a parsed FORTRAN edit descriptor like (16I5), (5E16.8)
// or (1P4D20.13): count fields per line, each width characters wide.
type fortranFormat struct {
	count int
	width int
	kind  byte // 'I', 'E', 'F', 'D', 'G'
}

// parseFormat accepts the common Harwell-Boeing descriptor shapes:
// "(nIw)", "(nEw.d)", "(nFw.d)", "(nDw.d)", optionally with a leading
// scale factor like "1P" and surrounding blanks.
func parseFormat(s string) (fortranFormat, error) {
	var f fortranFormat
	t := strings.ToUpper(strings.TrimSpace(s))
	t = strings.TrimPrefix(t, "(")
	t = strings.TrimSuffix(t, ")")
	// Drop a scale factor prefix such as "1P" or "1P," if present.
	if i := strings.Index(t, "P"); i >= 0 && i <= 2 {
		if _, err := strconv.Atoi(strings.TrimSpace(t[:i])); err == nil {
			t = strings.TrimPrefix(t[i+1:], ",")
		}
	}
	t = strings.TrimSpace(t)
	// Now expect [count] kind width [. dec].
	i := 0
	for i < len(t) && t[i] >= '0' && t[i] <= '9' {
		i++
	}
	f.count = 1
	if i > 0 {
		c, err := strconv.Atoi(t[:i])
		if err != nil {
			return f, fmt.Errorf("hb: bad format %q", s)
		}
		f.count = c
	}
	if i >= len(t) {
		return f, fmt.Errorf("hb: bad format %q", s)
	}
	f.kind = t[i]
	switch f.kind {
	case 'I', 'E', 'F', 'D', 'G':
	default:
		return f, fmt.Errorf("hb: unsupported edit descriptor %q", s)
	}
	rest := t[i+1:]
	if j := strings.IndexByte(rest, '.'); j >= 0 {
		rest = rest[:j]
	}
	w, err := strconv.Atoi(strings.TrimSpace(rest))
	if err != nil || w <= 0 {
		return f, fmt.Errorf("hb: bad field width in %q", s)
	}
	f.width = w
	return f, nil
}

// fieldReader yields fixed-width fields from card images (80-column
// lines), honouring a FORTRAN format's fields-per-line count.
type fieldReader struct {
	sc     *bufio.Scanner
	format fortranFormat
	line   string
	field  int // next field index within line
}

func (fr *fieldReader) next() (string, error) {
	if fr.field >= fr.format.count || fr.field*fr.format.width >= len(fr.line) {
		if !fr.sc.Scan() {
			return "", io.ErrUnexpectedEOF
		}
		fr.line = fr.sc.Text()
		fr.field = 0
	}
	lo := fr.field * fr.format.width
	hi := lo + fr.format.width
	if lo >= len(fr.line) {
		return "", fmt.Errorf("hb: short data line %q", fr.line)
	}
	if hi > len(fr.line) {
		hi = len(fr.line)
	}
	fr.field++
	return strings.TrimSpace(fr.line[lo:hi]), nil
}

func (fr *fieldReader) ints(n int) ([]int, error) {
	out := make([]int, n)
	for i := 0; i < n; i++ {
		s, err := fr.next()
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("hb: bad integer %q", s)
		}
		out[i] = v
	}
	return out, nil
}

func (fr *fieldReader) floats(n int) ([]float64, error) {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		s, err := fr.next()
		if err != nil {
			return nil, err
		}
		// FORTRAN D exponents are not understood by strconv.
		s = strings.ReplaceAll(strings.ReplaceAll(s, "D", "E"), "d", "e")
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("hb: bad value %q", s)
		}
		out[i] = v
	}
	return out, nil
}

// Read parses a Harwell-Boeing stream (RSA or PSA).
func Read(r io.Reader) (*sparse.Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	readLine := func() (string, error) {
		if !sc.Scan() {
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}

	if _, err := readLine(); err != nil { // title + key card
		return nil, fmt.Errorf("hb: missing header: %w", err)
	}
	counts, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("hb: missing counts card: %w", err)
	}
	cf := strings.Fields(counts)
	if len(cf) < 4 {
		return nil, fmt.Errorf("hb: bad counts card %q", counts)
	}
	rhscrd := 0
	if len(cf) >= 5 {
		rhscrd, _ = strconv.Atoi(cf[4])
	}

	typeCard, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("hb: missing type card: %w", err)
	}
	tf := strings.Fields(typeCard)
	if len(tf) < 4 {
		return nil, fmt.Errorf("hb: bad type card %q", typeCard)
	}
	mxtype := strings.ToUpper(tf[0])
	if mxtype != "RSA" && mxtype != "PSA" {
		return nil, fmt.Errorf("hb: unsupported matrix type %q (want RSA or PSA)", mxtype)
	}
	nrow, err1 := strconv.Atoi(tf[1])
	ncol, err2 := strconv.Atoi(tf[2])
	nnz, err3 := strconv.Atoi(tf[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("hb: bad dimensions on type card %q", typeCard)
	}
	if nrow != ncol {
		return nil, fmt.Errorf("hb: matrix is %d×%d, not square", nrow, ncol)
	}

	fmtCard, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("hb: missing format card: %w", err)
	}
	ff := strings.Fields(fmtCard)
	if len(ff) < 2 {
		return nil, fmt.Errorf("hb: bad format card %q", fmtCard)
	}
	ptrFmt, err := parseFormat(ff[0])
	if err != nil {
		return nil, err
	}
	indFmt, err := parseFormat(ff[1])
	if err != nil {
		return nil, err
	}
	var valFmt fortranFormat
	if mxtype == "RSA" {
		if len(ff) < 3 {
			return nil, fmt.Errorf("hb: RSA matrix missing value format")
		}
		if valFmt, err = parseFormat(ff[2]); err != nil {
			return nil, err
		}
	}
	if rhscrd > 0 {
		if _, err := readLine(); err != nil { // RHS format card, ignored
			return nil, fmt.Errorf("hb: missing rhs format card: %w", err)
		}
	}

	fr := &fieldReader{sc: sc, format: ptrFmt, field: ptrFmt.count}
	colptr, err := fr.ints(ncol + 1)
	if err != nil {
		return nil, fmt.Errorf("hb: reading pointers: %w", err)
	}
	fr.format = indFmt
	fr.field = indFmt.count
	fr.line = ""
	rowind, err := fr.ints(nnz)
	if err != nil {
		return nil, fmt.Errorf("hb: reading indices: %w", err)
	}
	var vals []float64
	if mxtype == "RSA" {
		fr.format = valFmt
		fr.field = valFmt.count
		fr.line = ""
		if vals, err = fr.floats(nnz); err != nil {
			return nil, fmt.Errorf("hb: reading values: %w", err)
		}
	}

	// Assemble triplets (HB symmetric files store one triangle).
	var ts []sparse.Triplet
	for j := 0; j < ncol; j++ {
		lo, hi := colptr[j]-1, colptr[j+1]-1
		if lo < 0 || hi < lo || hi > nnz {
			return nil, fmt.Errorf("hb: bad column pointer range [%d,%d) for column %d", lo, hi, j+1)
		}
		for p := lo; p < hi; p++ {
			i := rowind[p] - 1
			if i < 0 || i >= nrow {
				return nil, fmt.Errorf("hb: row index %d out of range", rowind[p])
			}
			v := 1.0
			if vals != nil {
				v = vals[p]
			}
			ts = append(ts, sparse.Triplet{Row: i, Col: j, Val: v})
		}
	}
	if mxtype == "PSA" {
		return assemblePatternLaplacian(nrow, ts)
	}
	return sparse.FromTriplets(nrow, ts)
}

// assemblePatternLaplacian gives a symmetric pattern Laplacian values so
// the result is positive definite.
func assemblePatternLaplacian(n int, ts []sparse.Triplet) (*sparse.Matrix, error) {
	deg := make([]int, n)
	hasDiag := make([]bool, n)
	for _, t := range ts {
		if t.Row != t.Col {
			deg[t.Row]++
			deg[t.Col]++
		} else {
			hasDiag[t.Row] = true
		}
	}
	out := make([]sparse.Triplet, 0, len(ts)+n)
	for _, t := range ts {
		if t.Row == t.Col {
			continue
		}
		out = append(out, sparse.Triplet{Row: t.Row, Col: t.Col, Val: -1})
	}
	for i := 0; i < n; i++ {
		out = append(out, sparse.Triplet{Row: i, Col: i, Val: float64(deg[i]) + 1})
	}
	return sparse.FromTriplets(n, out)
}

// Write emits m as an RSA Harwell-Boeing file with the given title/key
// (both truncated/padded to the format's field widths).
func Write(w io.Writer, m *sparse.Matrix, title, key string) error {
	bw := bufio.NewWriter(w)
	const (
		ptrPerLine = 8
		ptrWidth   = 10
		indPerLine = 8
		indWidth   = 10
		valPerLine = 4
		valWidth   = 20
	)
	nnz := m.NNZ()
	lines := func(items, perLine int) int { return (items + perLine - 1) / perLine }
	ptrcrd := lines(m.N+1, ptrPerLine)
	indcrd := lines(nnz, indPerLine)
	valcrd := lines(nnz, valPerLine)
	totcrd := ptrcrd + indcrd + valcrd

	if len(title) > 72 {
		title = title[:72]
	}
	if len(key) > 8 {
		key = key[:8]
	}
	fmt.Fprintf(bw, "%-72s%-8s\n", title, key)
	fmt.Fprintf(bw, "%14d%14d%14d%14d%14d\n", totcrd, ptrcrd, indcrd, valcrd, 0)
	fmt.Fprintf(bw, "%-14s%14d%14d%14d%14d\n", "RSA", m.N, m.N, nnz, 0)
	fmt.Fprintf(bw, "%-16s%-16s%-20s%-20s\n", "(8I10)", "(8I10)", "(4E20.12)", "")

	writeInts := func(xs []int, plus int) {
		for i, x := range xs {
			fmt.Fprintf(bw, "%10d", x+plus)
			if (i+1)%ptrPerLine == 0 || i == len(xs)-1 {
				fmt.Fprintln(bw)
			}
		}
	}
	writeInts(m.ColPtr, 1)
	writeInts(m.RowInd, 1)
	for i, v := range m.Val {
		fmt.Fprintf(bw, "%20.12E", v)
		if (i+1)%valPerLine == 0 || i == len(m.Val)-1 {
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

// ReadFile reads a Harwell-Boeing file from disk.
func ReadFile(path string) (*sparse.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile writes m to disk in RSA Harwell-Boeing format.
func WriteFile(path string, m *sparse.Matrix, title, key string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, m, title, key); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
