package hb

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"blockfanout/internal/gen"
	"blockfanout/internal/sparse"
)

func TestParseFormat(t *testing.T) {
	cases := map[string]fortranFormat{
		"(16I5)":      {16, 5, 'I'},
		"(8I10)":      {8, 10, 'I'},
		"(5E16.8)":    {5, 16, 'E'},
		"(4E20.12)":   {4, 20, 'E'},
		"(1P4D20.13)": {4, 20, 'D'},
		"(10F8.2)":    {10, 8, 'F'},
		" (3E26.18) ": {3, 26, 'E'},
		"(I8)":        {1, 8, 'I'},
	}
	for in, want := range cases {
		got, err := parseFormat(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if got != want {
			t.Fatalf("%q: got %+v, want %+v", in, got, want)
		}
	}
	for _, bad := range []string{"", "()", "(4X8)", "(E)", "(4E0.2)"} {
		if _, err := parseFormat(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for name, m := range map[string]*sparse.Matrix{
		"grid": gen.Grid2D(6),
		"mesh": gen.IrregularMesh(90, 4, 3, 5),
	} {
		var sb strings.Builder
		if err := Write(&sb, m, "test matrix "+name, name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("%s: %v\n%s", name, err, sb.String()[:200])
		}
		if got.N != m.N || got.NNZ() != m.NNZ() {
			t.Fatalf("%s: shape %d/%d vs %d/%d", name, got.N, got.NNZ(), m.N, m.NNZ())
		}
		for j := 0; j < m.N; j++ {
			for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
				i := m.RowInd[p]
				if math.Abs(got.At(i, j)-m.Val[p]) > 1e-11*(1+math.Abs(m.Val[p])) {
					t.Fatalf("%s: entry (%d,%d): %g vs %g", name, i, j, got.At(i, j), m.Val[p])
				}
			}
		}
	}
}

// hand-written RSA file with classic narrow formats.
const tinyRSA = `TINY TEST MATRIX                                                        TINY
             3             1             1             1             0
RSA                         3             3             4             0
(4I4)           (4I4)           (4E16.8)
   1   3   4   5
   1   2   2   3
  4.00000000E+00 -1.00000000E+00  4.00000000E+00  4.00000000E+00
`

func TestReadHandWritten(t *testing.T) {
	m, err := Read(strings.NewReader(tinyRSA))
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 3 || m.NNZ() != 4 {
		t.Fatalf("n=%d nnz=%d", m.N, m.NNZ())
	}
	if m.At(0, 0) != 4 || m.At(1, 0) != -1 || m.At(2, 2) != 4 {
		t.Fatal("values wrong")
	}
}

const tinyPSA = `PATTERN MATRIX                                                          PAT
             3             1             1             0             0
PSA                         3             3             4             0
(4I4)           (4I4)
   1   3   4   5
   1   2   2   3
`

func TestReadPattern(t *testing.T) {
	m, err := Read(strings.NewReader(tinyPSA))
	if err != nil {
		t.Fatal(err)
	}
	// Edge (1,0): deg(0)=1, deg(1)=1 → diagonals 2, 2; vertex 2 isolated
	// → diagonal 1.
	if m.At(0, 0) != 2 || m.At(1, 1) != 2 || m.At(2, 2) != 1 {
		t.Fatalf("pattern diagonals: %g %g %g", m.At(0, 0), m.At(1, 1), m.At(2, 2))
	}
	if m.At(1, 0) != -1 {
		t.Fatal("pattern off-diagonal")
	}
}

func TestReadDExponent(t *testing.T) {
	in := strings.ReplaceAll(tinyRSA, "E+00", "D+00")
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 4 {
		t.Fatal("D exponent not handled")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"unsupported": strings.Replace(tinyRSA, "RSA", "CUA", 1),
		"not square":  strings.Replace(tinyRSA, "RSA                         3             3", "RSA                         3             4", 1),
		"truncated":   tinyRSA[:200],
		"bad index": strings.Replace(tinyRSA,
			"   1   2   2   3", "   1   9   2   3", 1),
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	m := gen.Grid2D(4)
	path := filepath.Join(t.TempDir(), "m.rsa")
	if err := WriteFile(path, m, "grid", "G4"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != m.NNZ() {
		t.Fatal("round trip nnz")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLongTitleTruncated(t *testing.T) {
	m := gen.Grid2D(3)
	var sb strings.Builder
	long := strings.Repeat("x", 100)
	if err := Write(&sb, m, long, long); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(sb.String(), "\n", 2)[0]
	if len(first) != 80 {
		t.Fatalf("header card %d columns, want 80", len(first))
	}
	if _, err := Read(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
}
