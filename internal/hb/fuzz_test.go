package hb

import (
	"strings"
	"testing"
)

// FuzzRead checks that arbitrary input never panics the Harwell-Boeing
// parser and that anything it accepts is a structurally valid matrix.
func FuzzRead(f *testing.F) {
	f.Add(tinyRSA)
	f.Add(tinyPSA)
	f.Add("")
	f.Add("X\n0 0 0 0 0\nRSA 1 1 0 0\n(1I1) (1I1) (1E8.1)\n1\n")
	f.Fuzz(func(t *testing.T, in string) {
		m, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted invalid matrix: %v\ninput: %q", err, in)
		}
	})
}
