package mmio

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"blockfanout/internal/gen"
	"blockfanout/internal/sparse"
)

func TestRoundTrip(t *testing.T) {
	for name, m := range map[string]*sparse.Matrix{
		"grid": gen.Grid2D(7),
		"mesh": gen.IrregularMesh(120, 4, 3, 3),
	} {
		var sb strings.Builder
		if err := Write(&sb, m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.N != m.N || got.NNZ() != m.NNZ() {
			t.Fatalf("%s: shape changed: %d/%d vs %d/%d", name, got.N, got.NNZ(), m.N, m.NNZ())
		}
		for j := 0; j < m.N; j++ {
			for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
				i := m.RowInd[p]
				if got.At(i, j) != m.Val[p] {
					t.Fatalf("%s: entry (%d,%d) %g vs %g", name, i, j, got.At(i, j), m.Val[p])
				}
			}
		}
	}
}

func TestReadSymmetricUpperEntries(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 5
1 1 4.0
2 2 4.0
3 3 4.0
1 2 -1.5
1 3 -0.5
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != -1.5 || m.At(2, 0) != -0.5 {
		t.Fatalf("upper entries not mirrored: %g %g", m.At(1, 0), m.At(2, 0))
	}
}

func TestReadGeneralSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
2 2 4
1 1 2
2 2 3
1 2 -1
2 1 -1
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 2 || m.At(1, 1) != 3 || m.At(1, 0) != -1 {
		t.Fatal("general read wrong")
	}
}

func TestReadGeneralAsymmetricRejected(t *testing.T) {
	for _, in := range []string{
		// Mismatched values.
		"%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 2\n1 2 -1\n2 1 -2\n",
		// Missing mirror entry.
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 2\n1 2 -1\n",
		// Missing mirror entry, lower triangle.
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 2\n2 1 -1\n",
	} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("asymmetric general accepted: %q", in)
		}
	}
}

func TestReadPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
3 3 3
2 1
3 2
1 1
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Laplacian values: deg(0)=1 → diag 2; deg(1)=2 → diag 3.
	if m.At(0, 0) != 2 || m.At(1, 1) != 3 || m.At(2, 2) != 2 {
		t.Fatalf("pattern diagonal wrong: %g %g %g", m.At(0, 0), m.At(1, 1), m.At(2, 2))
	}
	if m.At(1, 0) != -1 {
		t.Fatal("pattern off-diagonal wrong")
	}
}

func TestReadInteger(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate integer symmetric\n2 2 3\n1 1 5\n2 2 5\n2 1 -2\n"
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != -2 {
		t.Fatal("integer values wrong")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"no banner":    "3 3 1\n1 1 1\n",
		"array format": "%%MatrixMarket matrix array real symmetric\n2 2\n1\n2\n3\n",
		"complex":      "%%MatrixMarket matrix coordinate complex symmetric\n1 1 1\n1 1 1 0\n",
		"skew":         "%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 0\n",
		"not square":   "%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 1 1\n",
		"out of range": "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n3 1 1\n",
		"short line":   "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 1\n",
		"bad value":    "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 1 x\n",
		"truncated":    "%%MatrixMarket matrix coordinate real symmetric\n2 2 3\n1 1 1\n",
		"duplicate":    "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 1\n1 1 2\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	m := gen.Grid2D(5)
	path := filepath.Join(t.TempDir(), "grid.mtx")
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != m.NNZ() {
		t.Fatal("file round trip changed nnz")
	}
	x := make([]float64, m.N)
	for i := range x {
		x[i] = float64(i)
	}
	a, b := m.MulVec(x), got.MulVec(x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("file round trip changed values")
		}
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.mtx")); err == nil {
		t.Fatal("missing file accepted")
	}
}
