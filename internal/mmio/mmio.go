// Package mmio reads and writes symmetric sparse matrices in the NIST
// Matrix Market exchange format (the successor of the Harwell-Boeing format
// the paper's benchmark matrices were distributed in). Only what a Cholesky
// code needs is supported: real (or integer, widened to real) square
// matrices, symmetric or general coordinate form, plus pattern-only files
// which are assembled as diagonally dominant Laplacians so they remain
// positive definite.
package mmio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"blockfanout/internal/sparse"
)

// Parsing limits: the size line is attacker-controlled input, so both
// dimensions and the entry count are capped before anything is allocated
// from them. MaxDim bounds n; an entry count must also fit the matrix
// (nnz ≤ n²).
const (
	MaxDim = 1 << 27 // 134M rows is far beyond anything this code factors
	MaxNNZ = 1 << 31
)

// header is the parsed MatrixMarket banner.
type header struct {
	object   string // "matrix"
	format   string // "coordinate"
	field    string // "real" | "integer" | "pattern"
	symmetry string // "symmetric" | "general"
}

// Read parses a Matrix Market stream into a symmetric sparse matrix.
//
//   - "symmetric" files may list either triangle; entries are mirrored.
//   - "general" files must be structurally symmetric; each unordered pair
//     must carry equal values, or an error is returned.
//   - "pattern" files get Laplacian values (diag = degree+1, off-diag −1),
//     preserving the structure while guaranteeing positive definiteness.
func Read(r io.Reader) (*sparse.Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("mmio: empty input")
	}
	h, err := parseBanner(sc.Text())
	if err != nil {
		return nil, err
	}

	// Skip comments, read the size line.
	var n, m, nnz int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("mmio: missing size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &n, &m, &nnz); err != nil {
			return nil, fmt.Errorf("mmio: bad size line %q: %v", line, err)
		}
		break
	}
	if n != m {
		return nil, fmt.Errorf("mmio: matrix is %d×%d, not square", n, m)
	}
	if n < 0 || nnz < 0 {
		return nil, fmt.Errorf("mmio: negative size line %d %d %d", n, m, nnz)
	}
	if n > MaxDim {
		return nil, fmt.Errorf("mmio: dimension %d exceeds limit %d", n, MaxDim)
	}
	if int64(nnz) > MaxNNZ || uint64(nnz) > uint64(n)*uint64(n) {
		return nil, fmt.Errorf("mmio: entry count %d impossible for a %d×%d matrix", nnz, n, n)
	}
	// Downstream assembly allocates O(n); a size line claiming a huge n
	// with almost no entries would let a tiny request reserve it all. Any
	// usable matrix here carries its diagonal (pattern files at least
	// cover their nodes with edges), so large-n files must bring entries
	// in proportion — this bounds every allocation by the actual input
	// size, since each claimed entry must then really be parsed.
	if n > 4096 && nnz < n/2 {
		return nil, fmt.Errorf("mmio: %d entries cannot describe a usable %d×%d symmetric matrix", nnz, n, n)
	}

	// Size the maps from the claimed entry count, but never preallocate
	// more than the input stream could plausibly back: a lying size line
	// must not be able to reserve gigabytes before the first entry fails
	// to parse.
	hint := nnz
	if hint > 1<<20 {
		hint = 1 << 20
	}
	type key struct{ r, c int }
	seen := make(map[key]float64, hint)
	var ts []sparse.Triplet
	general := make(map[key]float64, hint)
	count := 0
	for sc.Scan() && count < nnz {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		want := 3
		if h.field == "pattern" {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("mmio: short entry line %q", line)
		}
		i, err1 := strconv.Atoi(fields[0])
		j, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("mmio: bad indices in %q", line)
		}
		i--
		j-- // Matrix Market is 1-based
		if i < 0 || i >= n || j < 0 || j >= n {
			return nil, fmt.Errorf("mmio: entry (%d,%d) out of range", i+1, j+1)
		}
		v := 1.0
		if h.field != "pattern" {
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("mmio: bad value in %q", line)
			}
		}
		count++
		switch h.symmetry {
		case "symmetric":
			if i < j {
				i, j = j, i
			}
			k := key{i, j}
			if _, dup := seen[k]; dup {
				return nil, fmt.Errorf("mmio: duplicate entry (%d,%d)", i+1, j+1)
			}
			seen[k] = v
		default: // general: collect, verify symmetry afterwards
			general[key{i, j}] = v
		}
	}
	if count != nnz {
		return nil, fmt.Errorf("mmio: got %d of %d entries", count, nnz)
	}

	if h.symmetry == "general" {
		for k, v := range general {
			if k.r < k.c {
				continue
			}
			if k.r != k.c {
				mv, ok := general[key{k.c, k.r}]
				if !ok || mv != v {
					return nil, fmt.Errorf("mmio: general matrix not symmetric at (%d,%d)", k.r+1, k.c+1)
				}
			}
			seen[k] = v
		}
		// Ensure no upper-only entries were dropped silently.
		for k := range general {
			if k.r < k.c {
				if _, ok := general[key{k.c, k.r}]; !ok {
					return nil, fmt.Errorf("mmio: general matrix not symmetric at (%d,%d)", k.r+1, k.c+1)
				}
			}
		}
	}

	if h.field == "pattern" {
		deg := make([]int, n)
		for k := range seen {
			if k.r != k.c {
				deg[k.r]++
				deg[k.c]++
			}
		}
		for k := range seen {
			if k.r == k.c {
				seen[k] = float64(deg[k.r]) + 1
			} else {
				seen[k] = -1
			}
		}
		// Pattern files may omit diagonal entries; add them.
		for i := 0; i < n; i++ {
			if _, ok := seen[key{i, i}]; !ok {
				seen[key{i, i}] = float64(deg[i]) + 1
			}
		}
	}

	for k, v := range seen {
		ts = append(ts, sparse.Triplet{Row: k.r, Col: k.c, Val: v})
	}
	return sparse.FromTriplets(n, ts)
}

func parseBanner(line string) (header, error) {
	var h header
	if !strings.HasPrefix(line, "%%MatrixMarket") {
		return h, fmt.Errorf("mmio: missing MatrixMarket banner")
	}
	fields := strings.Fields(strings.ToLower(line))
	if len(fields) < 5 {
		return h, fmt.Errorf("mmio: short banner %q", line)
	}
	h.object, h.format, h.field, h.symmetry = fields[1], fields[2], fields[3], fields[4]
	if h.object != "matrix" {
		return h, fmt.Errorf("mmio: unsupported object %q", h.object)
	}
	if h.format != "coordinate" {
		return h, fmt.Errorf("mmio: unsupported format %q (only coordinate)", h.format)
	}
	switch h.field {
	case "real", "integer", "pattern":
	default:
		return h, fmt.Errorf("mmio: unsupported field %q", h.field)
	}
	switch h.symmetry {
	case "symmetric", "general":
	default:
		return h, fmt.Errorf("mmio: unsupported symmetry %q", h.symmetry)
	}
	return h, nil
}

// Write emits the lower triangle of m in coordinate real symmetric form.
func Write(w io.Writer, m *sparse.Matrix) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real symmetric")
	fmt.Fprintf(bw, "%d %d %d\n", m.N, m.N, m.NNZ())
	for j := 0; j < m.N; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			fmt.Fprintf(bw, "%d %d %.17g\n", m.RowInd[p]+1, j+1, m.Val[p])
		}
	}
	return bw.Flush()
}

// ReadFile reads a Matrix Market file from disk.
func ReadFile(path string) (*sparse.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile writes m to disk in Matrix Market format.
func WriteFile(path string, m *sparse.Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
