package mmio

import (
	"strings"
	"testing"
)

// FuzzRead checks that arbitrary input never panics the Matrix Market
// parser and that anything it accepts is a structurally valid matrix. The
// corpus seeds every banner variant plus the adversarial shapes the size
// caps exist for: lying entry counts, huge claimed dimensions, negative
// sizes, duplicates, and asymmetric general files.
func FuzzRead(f *testing.F) {
	seeds := []string{
		// Valid inputs across the supported banner variants.
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 4\n2 1 -1\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n2 1\n",
		"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate integer symmetric\n% comment\n\n2 2 2\n1 1 9\n2 2 9\n",
		// Malformed and adversarial inputs.
		"",
		"%%MatrixMarket matrix coordinate real symmetric\n",
		"%%MatrixMarket matrix array real symmetric\n2 2 3\n",
		"%%MatrixMarket matrix coordinate complex symmetric\n2 2 1\n1 1 1 0\n",
		"%%MatrixMarket matrix coordinate real symmetric\n-1 -1 -1\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 1 1e309\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 999999999\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real symmetric\n1000000000 1000000000 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n3 3 1\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 1\n1 1 2\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 1 nope\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n2 1 1\n",
		"not a matrix market file at all",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		// The service bounds bodies with MaxBytesReader; mirror that here
		// so the fuzzer explores parser states, not allocator limits.
		if len(in) > 1<<20 {
			return
		}
		m, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted invalid matrix: %v\ninput: %q", err, in)
		}
	})
}
