package mmio

import (
	"strings"
	"testing"
)

// FuzzRead checks that arbitrary input never panics the Matrix Market
// parser and that anything it accepts is a structurally valid matrix.
func FuzzRead(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 4\n2 1 -1\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n2 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n-1 -1 -1\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 1 1e309\n")
	f.Fuzz(func(t *testing.T, in string) {
		m, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted invalid matrix: %v\ninput: %q", err, in)
		}
	})
}
