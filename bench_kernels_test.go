package blockfanout

import (
	"os"
	"testing"
	"time"

	"blockfanout/internal/benchjson"
)

// TestWriteBenchKernelsJSON regenerates BENCH_kernels.json, the committed
// kernel-throughput report (per-kernel GFlop/s across block widths plus
// end-to-end fan-out wall time at CI scale). It is opt-in because timing
// runs are meaningless on a loaded machine:
//
//	BENCH_JSON=1 go test -run WriteBenchKernelsJSON .
func TestWriteBenchKernelsJSON(t *testing.T) {
	if os.Getenv("BENCH_JSON") == "" {
		t.Skip("set BENCH_JSON=1 to measure kernels and rewrite BENCH_kernels.json")
	}
	rep, err := benchjson.Collect(200 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteFile("BENCH_kernels.json"); err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Kernels {
		if row.GFlops <= 0 {
			t.Fatalf("kernel %s w=%d measured no throughput", row.Kernel, row.Width)
		}
	}
	t.Logf("wrote BENCH_kernels.json: %d kernel rows, %d fanout rows", len(rep.Kernels), len(rep.Fanout))
}
