// Command spchol is the command-line driver for the block fan-out sparse
// Cholesky library: it generates (or names) a benchmark problem, analyzes
// it, and then factors it for real, simulates it on the Paragon machine
// model, or reports load-balance and communication statistics.
//
// Usage:
//
//	spchol -problem GRID150 -action simulate -procs 64 -row ID -col CY
//	spchol -grid 128 -action factor -procs 16 -domains
//	spchol -mesh 5000 -action balance -procs 100
//	spchol -cube 20 -action stats
//
// Problem selection (one of):
//
//	-problem NAME   a paper benchmark (Table 1/6 name; -scale ci|paper)
//	-grid K         5-point Laplacian on a K×K grid
//	-cube K         7-point Laplacian on a K×K×K cube
//	-mesh N         random 3-D FE-style mesh with N vertices
//	-dense N        dense N×N SPD matrix
//	-file PATH      a symmetric matrix in Matrix Market format
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"blockfanout/internal/blocks"
	"blockfanout/internal/bundle"
	"blockfanout/internal/commvol"
	"blockfanout/internal/core"
	"blockfanout/internal/dot"
	"blockfanout/internal/experiments"
	"blockfanout/internal/fanout"
	"blockfanout/internal/gen"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
	"blockfanout/internal/mmio"
	"blockfanout/internal/obs"
	"blockfanout/internal/order"
	"blockfanout/internal/sched"
	"blockfanout/internal/sparse"
	"blockfanout/internal/stats"
	"blockfanout/internal/trace"
)

// writeTraceFile writes a Chrome trace-event JSON document to path via
// write, announcing where it landed so the user knows what to load.
func writeTraceFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace-event timeline written to %s (load in about:tracing or ui.perfetto.dev)\n", path)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spchol:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		problem   = flag.String("problem", "", "paper benchmark name (e.g. GRID150, BCSSTK31)")
		scale     = flag.String("scale", "ci", "benchmark scale for -problem: ci or paper")
		gridK     = flag.Int("grid", 0, "generate a K×K grid problem")
		cubeK     = flag.Int("cube", 0, "generate a K×K×K cube problem")
		meshN     = flag.Int("mesh", 0, "generate a random 3-D mesh with N vertices")
		denseN    = flag.Int("dense", 0, "generate a dense N×N problem")
		file      = flag.String("file", "", "read a Matrix Market file")
		action    = flag.String("action", "stats", "stats | balance | simulate | trace | factor | dot")
		blockSize = flag.Int("block", core.DefaultBlockSize, "block size B (panel-width cap for -blocking irregular)")
		blocking  = flag.String("blocking", "uniform", "partitioning strategy: uniform | staged | cycled | irregular")
		amalg     = flag.Float64("amalg", 0, "relative-fill amalgamation threshold for -blocking irregular (0 = default)")
		ordering  = flag.String("order", "auto", "ordering: auto | natural | mmd | amd | ndgraph | hybrid | rcm")
		procs     = flag.Int("procs", 16, "number of processors")
		rowH      = flag.String("row", "ID", "row mapping heuristic: CY DW IN DN ID")
		colH      = flag.String("col", "CY", "column mapping heuristic: CY DW IN DN ID")
		domains   = flag.Bool("domains", true, "use the domain/root split")
		seed      = flag.Uint64("seed", 7, "generator seed for -mesh")
		save      = flag.String("save", "", "with -action factor: write the factor bundle here")
		execMode  = flag.String("exec", "steal", "parallel execution engine for -action factor: steal | spmd")
		exp       = flag.String("exp", "", "action alias or internal/experiments runner name; picks a default problem if none is selected")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON timeline (about:tracing / Perfetto) to this file")
	)
	flag.Parse()

	if *exp != "" {
		switch *exp {
		case "stats", "balance", "simulate", "trace", "factor", "dot":
			*action = *exp
			// An experiment run should work standalone: default to the §5
			// representative problem when no problem flag was given.
			if *problem == "" && *gridK == 0 && *cubeK == 0 && *meshN == 0 && *denseN == 0 && *file == "" {
				*problem = "BCSSTK31"
			}
		default:
			r, ok := experiments.ByName(*exp)
			if !ok {
				return fmt.Errorf("unknown experiment %q (an action name or one of the cmd/tables runners)", *exp)
			}
			sc := gen.ScaleCI
			if *scale == "paper" {
				sc = gen.ScalePaper
			}
			cfg := experiments.Default(sc)
			fmt.Printf("== %s — %s\n", r.Name, r.Desc)
			if err := r.Run(os.Stdout, cfg); err != nil {
				return err
			}
			if *traceOut != "" {
				return writeTraceFile(*traceOut, func(w io.Writer) error {
					return experiments.TimelineTrace(w, cfg)
				})
			}
			return nil
		}
	}

	var (
		m       *sparse.Matrix
		method  order.Method
		gridDim int
		name    string
	)
	switch {
	case *problem != "":
		sc := gen.ScaleCI
		if *scale == "paper" {
			sc = gen.ScalePaper
		} else if *scale != "ci" {
			return fmt.Errorf("unknown scale %q", *scale)
		}
		suite := append(gen.Table1Suite(sc), gen.Table6Suite(sc)...)
		p, ok := gen.ByName(suite, *problem)
		if !ok {
			return fmt.Errorf("unknown problem %q", *problem)
		}
		name = p.Name
		m = p.Build()
		gridDim = p.GridDim
		switch p.Hint {
		case gen.HintNone:
			method = order.Natural
		case gen.HintNDGrid2D:
			method = order.NDGrid2D
		case gen.HintNDCube3D:
			method = order.NDCube3D
		default:
			method = order.MinDegree
		}
	case *gridK > 0:
		name = fmt.Sprintf("grid %d×%d", *gridK, *gridK)
		m, method, gridDim = gen.Grid2D(*gridK), order.NDGrid2D, *gridK
	case *cubeK > 0:
		name = fmt.Sprintf("cube %d³", *cubeK)
		m, method, gridDim = gen.Cube3D(*cubeK), order.NDCube3D, *cubeK
	case *meshN > 0:
		name = fmt.Sprintf("mesh n=%d", *meshN)
		m, method = gen.IrregularMesh(*meshN, 8, 3, *seed), order.MinDegree
	case *denseN > 0:
		name = fmt.Sprintf("dense %d", *denseN)
		m, method = gen.Dense(*denseN), order.Natural
	case *file != "":
		var err error
		if m, err = mmio.ReadFile(*file); err != nil {
			return err
		}
		name, method = *file, order.MinDegree
	default:
		return fmt.Errorf("no problem selected (use -problem, -grid, -cube, -mesh, -dense, or -file)")
	}

	// -order overrides the problem's default (auto) ordering.
	switch *ordering {
	case "auto":
	case "natural":
		method = order.Natural
	case "mmd":
		method = order.MinDegree
	case "amd":
		method = order.MinDegreeApprox
	case "ndgraph":
		method = order.NDGraph
	case "hybrid":
		method = order.NDHybrid
	case "rcm":
		method = order.CuthillMcKee
	default:
		return fmt.Errorf("unknown ordering %q", *ordering)
	}

	strat, err := blocks.ParseStrategy(*blocking)
	if err != nil {
		return err
	}

	rh, err := mapping.ParseHeuristic(*rowH)
	if err != nil {
		return err
	}
	ch, err := mapping.ParseHeuristic(*colH)
	if err != nil {
		return err
	}

	emode, err := fanout.ParseMode(*execMode)
	if err != nil {
		return err
	}

	t0 := time.Now()
	plan, err := core.NewPlan(m, core.Options{
		Ordering: method, GridDim: gridDim, BlockSize: *blockSize,
		Blocking: strat, AmalgThreshold: *amalg, Exec: emode,
	})
	if err != nil {
		return err
	}
	// The analysis banner goes to stderr so machine-readable actions
	// (dot) keep stdout clean.
	banner := os.Stdout
	if *action == "dot" {
		banner = os.Stderr
	}
	fmt.Fprintf(banner, "%s: n=%d nnz(A)=%d → nnz(L)=%d ops=%.1fM  [analyze %v]\n",
		name, m.N, m.NNZ(), plan.Exact.NZinL, float64(plan.Exact.Flops)/1e6,
		time.Since(t0).Round(time.Millisecond))
	fmt.Fprintf(banner, "ordering=%v B=%d blocking=%v supernodes=%d panels=%d\n",
		method, *blockSize, strat, len(plan.Sym.Snodes), plan.BS.N())

	if *action == "dot" {
		return dot.SupernodeForest(os.Stdout, plan.Sym)
	}
	if *action == "stats" {
		stats.Report(os.Stdout, plan)
		cfg := machine.Paragon()
		fmt.Printf("critical path: %.4fs (%.0f Mflops bound on this machine model)\n",
			plan.CriticalPath(cfg), float64(plan.Exact.Flops)/plan.CriticalPath(cfg)/1e6)
		return nil
	}

	g := mapping.BestGrid(*procs)
	mp := plan.Map(g, rh, ch)
	beta := 0.0
	if *domains {
		beta = 2.0
	}
	assign := plan.Assign(mp, beta)

	// simTrace writes the simulated timeline for the current assignment.
	simTrace := func() error {
		cfg := machine.Paragon()
		cfg.CollectTrace = true
		res := plan.Simulate(assign, cfg)
		label := fmt.Sprintf("%s %v/%v P=%d (simulated)", name, rh, ch, g.P())
		return writeTraceFile(*traceOut, func(w io.Writer) error {
			return obs.WriteMachineTrace(w, &res, label)
		})
	}

	switch *action {
	case "balance":
		bal := plan.Balances(mp)
		vol := commvol.Of(plan.BS, sched.Assignment{Map: mp})
		fmt.Printf("grid %d×%d, %v rows / %v cols:\n", g.Pr, g.Pc, rh, ch)
		fmt.Printf("  row balance     %.3f\n  column balance  %.3f\n  diagonal bal.   %.3f\n  overall balance %.3f\n",
			bal.Row, bal.Col, bal.Diag, bal.Overall)
		fmt.Printf("  comm volume     %d messages, %d bytes\n", vol.Messages, vol.Bytes)
		if *traceOut != "" {
			return simTrace()
		}

	case "simulate":
		cfg := machine.Paragon()
		res := plan.Simulate(assign, cfg)
		fmt.Printf("simulated %d-processor Paragon (domains=%v):\n", g.P(), *domains)
		fmt.Printf("  parallel time   %.4fs  (t_seq %.4fs)\n", res.Time, res.SeqTime)
		fmt.Printf("  efficiency      %.1f%%\n", res.Efficiency()*100)
		fmt.Printf("  performance     %.0f Mflops\n", res.Mflops(plan.Exact.Flops))
		fmt.Printf("  communication   %d messages, %d bytes, ≤%.1f%% of runtime\n",
			res.Messages, res.Bytes, res.CommFraction()*100)
		if *traceOut != "" {
			return simTrace()
		}

	case "trace":
		cfg := machine.Paragon()
		cfg.CollectTrace = true
		res := plan.Simulate(assign, cfg)
		if err := trace.Gantt(os.Stdout, &res, 100); err != nil {
			return err
		}
		if err := trace.Utilization(os.Stdout, &res); err != nil {
			return err
		}
		if *traceOut != "" {
			label := fmt.Sprintf("%s %v/%v P=%d (simulated)", name, rh, ch, g.P())
			return writeTraceFile(*traceOut, func(w io.Writer) error {
				return obs.WriteMachineTrace(w, &res, label)
			})
		}

	case "factor":
		start := time.Now()
		var (
			f   *core.Factor
			rec *obs.Recorder
		)
		if *traceOut != "" {
			f, rec, err = plan.FactorTracedContext(context.Background(), assign)
		} else {
			f, err = plan.Factor(assign)
		}
		if err != nil {
			return err
		}
		el := time.Since(start)
		b := make([]float64, m.N)
		for i := range b {
			b[i] = 1
		}
		x, err := f.Solve(b)
		if err != nil {
			return err
		}
		fmt.Printf("parallel factorization on %d goroutine-processors: %v (%.1f Mflop/s wall)\n",
			g.P(), el.Round(time.Microsecond), float64(plan.Exact.Flops)/el.Seconds()/1e6)
		fmt.Printf("solve residual ‖A·x−b‖∞ = %.3g\n", f.Residual(x, b))
		if *save != "" {
			if err := bundle.SaveFile(*save, bundle.FromFactor(f)); err != nil {
				return err
			}
			fmt.Printf("factor bundle saved to %s\n", *save)
		}
		if rec != nil {
			label := fmt.Sprintf("%s %v/%v P=%d (executed)", name, rh, ch, g.P())
			return writeTraceFile(*traceOut, func(w io.Writer) error {
				return rec.WriteTrace(w, label)
			})
		}

	default:
		return fmt.Errorf("unknown action %q", *action)
	}
	return nil
}
