// Command convert translates symmetric sparse matrices between the Matrix
// Market (.mtx) and Harwell-Boeing RSA (.rsa) exchange formats — the two
// formats the sparse-matrix test sets of the paper's era were shipped in.
//
// Usage:
//
//	convert -in matrix.rsa -out matrix.mtx
//	convert -in mesh.mtx -out mesh.rsa -title "my mesh" -key MESH1
//
// The direction is inferred from the file extensions.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"blockfanout/internal/hb"
	"blockfanout/internal/mmio"
	"blockfanout/internal/sparse"
)

func main() {
	in := flag.String("in", "", "input file (.mtx, .rsa, .psa)")
	out := flag.String("out", "", "output file (.mtx, .rsa)")
	title := flag.String("title", "converted by blockfanout", "Harwell-Boeing title")
	key := flag.String("key", "BFCONV", "Harwell-Boeing key")
	flag.Parse()

	if err := run(*in, *out, *title, *key); err != nil {
		fmt.Fprintln(os.Stderr, "convert:", err)
		os.Exit(1)
	}
}

func run(in, out, title, key string) error {
	if in == "" || out == "" {
		return fmt.Errorf("both -in and -out are required")
	}
	var (
		m   *sparse.Matrix
		err error
	)
	switch strings.ToLower(filepath.Ext(in)) {
	case ".mtx":
		m, err = mmio.ReadFile(in)
	case ".rsa", ".psa", ".hb":
		m, err = hb.ReadFile(in)
	default:
		return fmt.Errorf("unrecognized input extension %q", filepath.Ext(in))
	}
	if err != nil {
		return err
	}
	switch strings.ToLower(filepath.Ext(out)) {
	case ".mtx":
		err = mmio.WriteFile(out, m)
	case ".rsa":
		err = hb.WriteFile(out, m, title, key)
	default:
		return fmt.Errorf("unrecognized output extension %q", filepath.Ext(out))
	}
	if err != nil {
		return err
	}
	fmt.Printf("converted %s → %s (n=%d, nnz=%d)\n", in, out, m.N, m.NNZ())
	return nil
}
