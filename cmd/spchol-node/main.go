// Command spchol-node runs one worker node of a spchol cluster. It dials
// the gateway's control listener (spchol-serve -gateway -control ...),
// advertises its identity and relative speed, and then factors whatever
// slice of each job's block→processor mapping the gateway assigns it,
// exchanging completed block columns with peer nodes over TCP.
//
// Usage:
//
//	spchol-node -id n0 -gateway 127.0.0.1:9000 -data 127.0.0.1:9100
//	spchol-node -id slow -gateway 127.0.0.1:9000 -speed 0.5
//
// The node reconnects-by-restart: if the gateway is unreachable the
// process exits nonzero and a supervisor (systemd, a shell loop) is
// expected to relaunch it; on rejoin the gateway reuses the node's slot.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blockfanout/internal/cluster"
)

func main() {
	var (
		id       = flag.String("id", "", "stable node identity (required)")
		gateway  = flag.String("gateway", "127.0.0.1:9000", "gateway control address to dial")
		dataAddr = flag.String("data", "127.0.0.1:0", "listen address for peer block traffic")
		speed    = flag.Float64("speed", 1.0, "relative speed advertised to the gateway's partitioner")
		flops    = flag.Float64("flops-per-sec", 0, "throttle each worker to this flop rate (0 = unthrottled)")
		workers  = flag.Int("workers", 0, "worker goroutines per factorization (0 = GOMAXPROCS)")
		beat     = flag.Duration("heartbeat", 500*time.Millisecond, "heartbeat interval")
		traceDir = flag.String("trace-dir", "", "write per-epoch trace-event JSON files here")
		storeDir = flag.String("store-dir", "", "checkpoint held blocks here at each epoch end; a restarted node rejoins warm (empty = no durability)")
		stall    = flag.Duration("stall-timeout", 0, "fail the epoch if no block completes or arrives for this long (0 = disabled); set well above the longest single-kernel time")
	)
	flag.Parse()
	if *id == "" {
		fmt.Fprintln(os.Stderr, "spchol-node: -id is required")
		os.Exit(2)
	}

	n := cluster.NewNode(cluster.NodeConfig{
		ID:             *id,
		Gateway:        *gateway,
		DataAddr:       *dataAddr,
		Speed:          *speed,
		FlopsPerSec:    *flops,
		Workers:        *workers,
		HeartbeatEvery: *beat,
		TraceDir:       *traceDir,
		StoreDir:       *storeDir,
		StallTimeout:   *stall,
		Logf:           log.Printf,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := n.Run(ctx); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "spchol-node:", err)
		os.Exit(1)
	}
}
