// Command spchol-serve runs the long-running sparse Cholesky solve service.
// Clients POST matrices to /v1/factor (MatrixMarket text or JSON-CSC,
// selected by Content-Type) and right-hand sides to /v1/solve; repeated
// factor requests for the same sparsity pattern skip ordering and symbolic
// analysis via the pattern-keyed plan cache and refactor numerically in
// place, and concurrent single-RHS solves are coalesced into shared
// multi-RHS sweeps.
//
// Usage:
//
//	spchol-serve -addr :8080 -procs 8 -workers 4
//	spchol-serve -cache-entries 32 -cache-bytes 536870912 -batch-window 2ms
//
// SIGINT/SIGTERM drain the server: health checks start failing (so load
// balancers stop routing), in-flight requests finish, then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blockfanout/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spchol-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		procs        = flag.Int("procs", 0, "parallel width of each factorization (0 = GOMAXPROCS, capped at 16)")
		workers      = flag.Int("workers", 0, "concurrent heavy operations (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "operations that may wait for a worker before 429")
		cacheEntries = flag.Int("cache-entries", 0, "plan cache entry budget (0 = default 64)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "plan cache byte budget (0 = default 1 GiB)")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "how long the first solve of a batch waits for company (negative disables batching)")
		batchLimit   = flag.Int("batch-limit", 64, "flush a batch early at this many right-hand sides")
		timeout      = flag.Duration("timeout", 60*time.Second, "per-request deadline for heavy work")
		block        = flag.Int("block", 0, "panel width B of new plans (0 = default 48)")
		drainWait    = flag.Duration("drain-wait", 30*time.Second, "how long shutdown waits for in-flight requests")
		debugAddr    = flag.String("debug-addr", "", "optional second listener with net/http/pprof and /metrics (keep it off the public network)")
	)
	flag.Parse()

	s := server.New(server.Config{
		Procs:          *procs,
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		CacheBytes:     *cacheBytes,
		BatchWindow:    *batchWindow,
		BatchLimit:     *batchLimit,
		RequestTimeout: *timeout,
		BlockSize:      *block,
	})
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	// The debug listener carries pprof, which must stay opt-in and off the
	// serving address; its lifetime is tied to the process, not the drain.
	var ds *http.Server
	if *debugAddr != "" {
		ds = &http.Server{Addr: *debugAddr, Handler: s.DebugHandler()}
		go func() {
			log.Printf("debug listener (pprof, /metrics) on %s", *debugAddr)
			if err := ds.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("spchol-serve listening on %s", *addr)
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("draining (up to %s)...", *drainWait)
	s.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if ds != nil {
		_ = ds.Shutdown(shutdownCtx)
	}
	log.Printf("drained cleanly")
	return <-errc
}
