// Command spchol-serve runs the long-running sparse Cholesky solve service.
// Clients POST matrices to /v1/factor (MatrixMarket text or JSON-CSC,
// selected by Content-Type) and right-hand sides to /v1/solve; repeated
// factor requests for the same sparsity pattern skip ordering and symbolic
// analysis via the pattern-keyed plan cache and refactor numerically in
// place, and concurrent single-RHS solves are coalesced into shared
// multi-RHS sweeps.
//
// Usage:
//
//	spchol-serve -addr :8080 -procs 8 -workers 4
//	spchol-serve -cache-entries 32 -cache-bytes 536870912 -batch-window 2ms
//
// SIGINT/SIGTERM drain the server: health checks start failing (so load
// balancers stop routing), in-flight requests finish, then the process
// exits.
//
// With -gateway the process instead fronts a multi-node cluster: it opens
// a second listener (-control) that spchol-node workers dial, shards
// factorizations across them, and serves the same /v1/* API backed by the
// cluster (see internal/cluster).
//
//	spchol-serve -gateway -addr :8080 -control :9000 -replicas 1
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blockfanout/internal/admission"
	"blockfanout/internal/cluster"
	"blockfanout/internal/fanout"
	"blockfanout/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spchol-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		procs        = flag.Int("procs", 0, "parallel width of each factorization (0 = GOMAXPROCS, capped at 16)")
		workers      = flag.Int("workers", 0, "concurrent heavy operations (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "operations that may wait for a worker before 429")
		cacheEntries = flag.Int("cache-entries", 0, "plan cache entry budget (0 = default 64)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "plan cache byte budget (0 = default 1 GiB)")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "how long the first solve of a batch waits for company (negative disables batching)")
		batchLimit   = flag.Int("batch-limit", 64, "flush a batch early at this many right-hand sides")
		timeout      = flag.Duration("timeout", 60*time.Second, "per-request deadline for heavy work")
		block        = flag.Int("block", 0, "panel width B of new plans (0 = default 48)")
		execMode     = flag.String("exec", "steal", "parallel execution engine: steal | spmd")
		drainWait    = flag.Duration("drain-wait", 30*time.Second, "how long shutdown waits for in-flight requests")
		debugAddr    = flag.String("debug-addr", "", "optional second listener with net/http/pprof and /metrics (keep it off the public network)")
		storeDir     = flag.String("store-dir", "", "durable snapshot store directory; factors persist across restarts and are warm-started on boot (empty = no durability)")
		tuneFlag     = flag.Bool("tune", false, "feedback-driven mapping: measure the first factorization of each pattern and remap its blocks from the measured costs when that predicts a better balance (gateway: propagate persisted tuned mappings to nodes)")
		snapEvery    = flag.Duration("snapshot-interval", 0, "minimum spacing between write-behind snapshots of the same factor (0 = default 1s, negative = snapshot every factorization)")

		tenantsPath    = flag.String("tenants", "", "JSON file of per-tenant admission limits; the \"default\" key meters tenants not listed (empty = unmetered)")
		maxFactorBytes = flag.Int64("max-factor-bytes", 0, "refuse factor requests whose factor would exceed this many bytes, before symbolic work (0 = unlimited)")
		memSoftBytes   = flag.Uint64("mem-soft-bytes", 0, "heap watermark that sheds low-priority work (brownout; 0 = disabled)")
		memHardBytes   = flag.Uint64("mem-hard-bytes", 0, "heap watermark that rejects new factorizations (0 = disabled)")

		gateway      = flag.Bool("gateway", false, "run as a cluster gateway instead of a single-process server")
		control      = flag.String("control", ":9000", "gateway: listen address for spchol-node control connections")
		replicas     = flag.Int("replicas", 1, "gateway: factor replicas besides the primary assembly node")
		minNodes     = flag.Int("min-nodes", 1, "gateway: refuse factor requests below this many live nodes")
		beatEvery    = flag.Duration("heartbeat-interval", 500*time.Millisecond, "gateway: heartbeat cadence the fleet is expected to keep")
		beatMisses   = flag.Int("heartbeat-misses", 4, "gateway: consecutive missed heartbeat intervals before a node is declared dead")
		beatLimit    = flag.Duration("heartbeat-timeout", 0, "gateway: declare a silent node dead after this long (0 = heartbeat-interval × heartbeat-misses)")
		fallbackFlag = flag.Bool("local-fallback", true, "gateway: factor locally (degraded mode) instead of erroring when fewer than min-nodes are alive")
	)
	flag.Parse()

	mode, err := fanout.ParseMode(*execMode)
	if err != nil {
		return err
	}

	tenantDefault, tenants, err := loadTenants(*tenantsPath)
	if err != nil {
		return err
	}

	if *gateway {
		return runGateway(gatewayFlags{
			addr: *addr, control: *control, procs: *procs,
			block: *block, exec: mode, replicas: *replicas,
			minNodes: *minNodes, heartbeatInterval: *beatEvery,
			heartbeatMisses: *beatMisses, heartbeatTimeout: *beatLimit,
			localFallback: *fallbackFlag, storeDir: *storeDir, tune: *tuneFlag,
			cacheEntries: *cacheEntries, cacheBytes: *cacheBytes,
			timeout: *timeout, drainWait: *drainWait,
			queueDepth: *queue, tenantDefault: tenantDefault, tenants: tenants,
			memSoftBytes: *memSoftBytes, memHardBytes: *memHardBytes,
		})
	}

	s := server.New(server.Config{
		Procs:            *procs,
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *cacheEntries,
		CacheBytes:       *cacheBytes,
		BatchWindow:      *batchWindow,
		BatchLimit:       *batchLimit,
		RequestTimeout:   *timeout,
		BlockSize:        *block,
		Exec:             mode,
		Tune:             *tuneFlag,
		StoreDir:         *storeDir,
		SnapshotInterval: *snapEvery,
		TenantDefault:    tenantDefault,
		Tenants:          tenants,
		MaxFactorBytes:   *maxFactorBytes,
		MemSoftBytes:     *memSoftBytes,
		MemHardBytes:     *memHardBytes,
	})
	if *storeDir != "" {
		if n, err := s.WarmStart(); err != nil {
			log.Printf("warm start: %v", err)
		} else {
			log.Printf("warm start: restored %d factor(s) from %s", n, *storeDir)
		}
	}
	hs := newHTTPServer(*addr, s.Handler())

	// The debug listener carries pprof, which must stay opt-in and off the
	// serving address; its lifetime is tied to the process, not the drain.
	var ds *http.Server
	if *debugAddr != "" {
		ds = newHTTPServer(*debugAddr, s.DebugHandler())
		go func() {
			log.Printf("debug listener (pprof, /metrics) on %s", *debugAddr)
			if err := ds.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("spchol-serve listening on %s", *addr)
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("draining (up to %s)...", *drainWait)
	s.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if ds != nil {
		_ = ds.Shutdown(shutdownCtx)
	}
	s.Close() // flush pending snapshot writes
	log.Printf("drained cleanly")
	return <-errc
}

// newHTTPServer wraps a handler with the protective timeouts every
// listener needs: a client that stalls mid-headers, trickles a body
// forever, or parks an idle connection cannot pin a goroutine (and its
// buffers) indefinitely. The read timeout is generous because legitimate
// MatrixMarket uploads of paper-scale problems stream hundreds of MB.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// loadTenants reads the -tenants JSON file: an object mapping tenant name
// to admission limits, with the special key "default" metering tenants not
// listed. An empty path leaves everyone unmetered.
//
//	{
//	  "default":  {"rate": 5, "burst": 10, "max_in_flight": 2},
//	  "team-ml":  {"rate": 100, "burst": 200, "max_in_flight": 16,
//	               "max_cache_bytes": 268435456}
//	}
func loadTenants(path string) (admission.TenantLimits, map[string]admission.TenantLimits, error) {
	var def admission.TenantLimits
	if path == "" {
		return def, nil, nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return def, nil, fmt.Errorf("tenants: %w", err)
	}
	all := make(map[string]admission.TenantLimits)
	if err := json.Unmarshal(b, &all); err != nil {
		return def, nil, fmt.Errorf("tenants: parse %s: %w", path, err)
	}
	if d, ok := all["default"]; ok {
		def = d
		delete(all, "default")
	}
	return def, all, nil
}

// gatewayFlags carries the -gateway subset of the command line.
type gatewayFlags struct {
	addr, control     string
	procs, block      int
	exec              fanout.Mode
	replicas          int
	minNodes          int
	heartbeatInterval time.Duration
	heartbeatMisses   int
	heartbeatTimeout  time.Duration
	localFallback     bool
	storeDir          string
	tune              bool
	cacheEntries      int
	cacheBytes        int64
	timeout           time.Duration
	drainWait         time.Duration
	queueDepth        int
	tenantDefault     admission.TenantLimits
	tenants           map[string]admission.TenantLimits
	memSoftBytes      uint64
	memHardBytes      uint64
}

// runGateway serves the /v1/* API backed by a node cluster instead of the
// in-process worker pool.
func runGateway(gf gatewayFlags) error {
	gw := cluster.NewGateway(cluster.GatewayConfig{
		Procs:                gf.procs,
		BlockSize:            gf.block,
		Exec:                 gf.exec,
		Replicas:             gf.replicas,
		MinNodes:             gf.minNodes,
		HeartbeatInterval:    gf.heartbeatInterval,
		HeartbeatMisses:      gf.heartbeatMisses,
		HeartbeatTimeout:     gf.heartbeatTimeout,
		DisableLocalFallback: !gf.localFallback,
		StoreDir:             gf.storeDir,
		Tune:                 gf.tune,
		RequestTimeout:       gf.timeout,
		CacheEntries:         gf.cacheEntries,
		CacheBytes:           gf.cacheBytes,
		QueueDepth:           gf.queueDepth,
		TenantDefault:        gf.tenantDefault,
		Tenants:              gf.tenants,
		MemSoftBytes:         gf.memSoftBytes,
		MemHardBytes:         gf.memHardBytes,
		Logf:                 log.Printf,
	})
	if gf.storeDir != "" {
		if n, err := gw.WarmStart(); err != nil {
			log.Printf("gateway warm start: %v", err)
		} else {
			log.Printf("gateway warm start: restored %d plan(s) from %s", n, gf.storeDir)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", gf.control)
	if err != nil {
		return fmt.Errorf("control listener: %w", err)
	}
	go func() {
		log.Printf("gateway control listener on %s", ln.Addr())
		if err := gw.Serve(ctx, ln); err != nil {
			log.Printf("gateway control: %v", err)
		}
	}()

	hs := newHTTPServer(gf.addr, gw.Handler())
	errc := make(chan error, 1)
	go func() {
		log.Printf("gateway API listening on %s", gf.addr)
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), gf.drainWait)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return <-errc
}
