// Command spchol-clusterbench measures what heterogeneous-aware
// partitioning buys on a real (localhost) cluster: it brings up a gateway
// plus three nodes where one node runs at half speed, factors a
// BCSSTK31-class mesh twice — once with the slow node advertising its true
// speed (the gateway's GreedyWeighted partitioner shifts flops off it) and
// once advertising full speed (speed-oblivious splitting) — and reports
// both wall-clock times as JSON.
//
// Usage:
//
//	spchol-clusterbench            # human-readable + JSON to stdout
//	spchol-clusterbench -o BENCH_cluster.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"blockfanout/internal/cluster"
	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	"blockfanout/internal/order"
	"blockfanout/internal/sparse"
)

func main() {
	var (
		out     = flag.String("o", "", "write the JSON report here instead of stdout")
		meshN   = flag.Int("mesh", 2200, "mesh vertex count (BCSSTK31 CI analogue at 2200)")
		seconds = flag.Float64("seconds", 2.0, "target cluster compute time per run")
	)
	flag.Parse()
	if err := run(*out, *meshN, *seconds); err != nil {
		fmt.Fprintln(os.Stderr, "spchol-clusterbench:", err)
		os.Exit(1)
	}
}

type report struct {
	Problem      string    `json:"problem"`
	N            int       `json:"n"`
	Flops        int64     `json:"flops"`
	Nodes        int       `json:"nodes"`
	Speeds       []float64 `json:"speeds"`
	AwareMs      float64   `json:"speed_aware_ms"`
	ObliviousMs  float64   `json:"speed_oblivious_ms"`
	Improvement  float64   `json:"improvement_pct"`
	AwareSlowPct float64   `json:"aware_slow_node_flop_share_pct"`
	OblSlowPct   float64   `json:"oblivious_slow_node_flop_share_pct"`
}

func run(out string, meshN int, seconds float64) error {
	m := gen.IrregularMesh(meshN, 9, 3, 31)
	plan, err := core.NewPlan(m, core.Options{Ordering: order.MinDegree, BlockSize: core.DefaultBlockSize})
	if err != nil {
		return err
	}
	// Per-worker flop throttle such that three full-speed nodes (2 workers
	// each) would finish the factorization in roughly the target time.
	rate := float64(plan.Exact.Flops) / 6 / seconds

	speeds := []float64{1, 1, 0.5}
	fmt.Printf("mesh n=%d: %d flops, 3 nodes (speeds %v), ~%.1fs per run\n",
		m.N, plan.Exact.Flops, speeds, seconds)

	awareMs, awareSlow, err := runOnce(m, rate, speeds, true)
	if err != nil {
		return fmt.Errorf("speed-aware run: %w", err)
	}
	oblMs, oblSlow, err := runOnce(m, rate, speeds, false)
	if err != nil {
		return fmt.Errorf("oblivious run: %w", err)
	}

	r := report{
		Problem: fmt.Sprintf("IrregularMesh(%d,9,3,31)", meshN), N: m.N,
		Flops: plan.Exact.Flops, Nodes: 3, Speeds: speeds,
		AwareMs: awareMs, ObliviousMs: oblMs,
		Improvement:  100 * (1 - awareMs/oblMs),
		AwareSlowPct: awareSlow, OblSlowPct: oblSlow,
	}
	fmt.Printf("speed-aware %.0f ms (slow node %.1f%% of flops) vs oblivious %.0f ms (%.1f%%): %.1f%% faster\n",
		r.AwareMs, r.AwareSlowPct, r.ObliviousMs, r.OblSlowPct, r.Improvement)

	doc, _ := json.MarshalIndent(r, "", "  ")
	doc = append(doc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	return os.WriteFile(out, doc, 0o644)
}

// runOnce builds a fresh 3-node cluster, factors m once, and returns the
// factor wall-clock plus the slow node's share of the executed flops. With
// aware=false the half-speed node lies to the partitioner, so it receives
// a full-speed node's share and becomes the straggler.
func runOnce(m *sparse.Matrix, rate float64, speeds []float64, aware bool) (ms, slowSharePct float64, err error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ln, lerr := net.Listen("tcp", "127.0.0.1:0")
	if lerr != nil {
		return 0, 0, lerr
	}
	quiet := func(string, ...any) {}
	gw := cluster.NewGateway(cluster.GatewayConfig{
		Procs: 6, HeartbeatTimeout: 5 * time.Second, Logf: quiet,
	})
	go gw.Serve(ctx, ln)

	for i, sp := range speeds {
		adv := sp
		if !aware {
			adv = 1
		}
		n := cluster.NewNode(cluster.NodeConfig{
			ID:      fmt.Sprintf("n%d", i),
			Gateway: ln.Addr().String(),
			Speed:   adv,
			// The real execution rate always honors the true speed.
			FlopsPerSec: rate * sp,
			Workers:     2,
			Logf:        quiet,
		})
		go n.Run(ctx)
	}

	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()
	if err := waitAlive(ts.URL, len(speeds)); err != nil {
		return 0, 0, err
	}

	body, _ := json.Marshal(map[string]any{
		"n": m.N, "colptr": m.ColPtr, "rowind": m.RowInd, "val": m.Val,
	})
	t0 := time.Now()
	resp, err := http.Post(ts.URL+"/v1/factor", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return 0, 0, fmt.Errorf("factor: %d %s", resp.StatusCode, e.Error)
	}
	ms = float64(time.Since(t0).Microseconds()) / 1000

	// The slow node is the last configured one; its flop share comes from
	// the per-node stats the gateway aggregates in /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return 0, 0, err
	}
	defer mresp.Body.Close()
	var doc struct {
		Nodes []struct {
			ID    string `json:"id"`
			Flops uint64 `json:"flops"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&doc); err != nil {
		return 0, 0, err
	}
	var total, slow uint64
	slowID := fmt.Sprintf("n%d", len(speeds)-1)
	for _, nd := range doc.Nodes {
		total += nd.Flops
		if nd.ID == slowID {
			slow = nd.Flops
		}
	}
	if total > 0 {
		slowSharePct = 100 * float64(slow) / float64(total)
	}
	return ms, slowSharePct, nil
}

func waitAlive(url string, want int) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			var h struct {
				Nodes []struct {
					Alive bool `json:"alive"`
				} `json:"nodes"`
			}
			json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			alive := 0
			for _, nd := range h.Nodes {
				if nd.Alive {
					alive++
				}
			}
			if alive >= want {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("cluster never reached %d nodes", want)
}
