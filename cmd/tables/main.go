// Command tables regenerates the paper's tables and figures.
//
// Usage:
//
//	tables [-exp name|all] [-scale ci|paper]
//
// Experiments: table1 figure1 table2 table3 table4 table5 table6 table7
// alt-heuristic relprime commfrac critpath subcube blocksize commscaling.
// -scale paper uses the paper's matrix sizes (minutes of CPU); the default
// ci scale uses structurally identical reduced matrices.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"blockfanout/internal/experiments"
	"blockfanout/internal/gen"
)

func main() {
	expName := flag.String("exp", "all", "experiment to run (or 'all')")
	scaleName := flag.String("scale", "ci", "matrix scale: ci or paper")
	flag.Parse()

	var scale gen.Scale
	switch *scaleName {
	case "ci":
		scale = gen.ScaleCI
	case "paper":
		scale = gen.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want ci or paper)\n", *scaleName)
		os.Exit(2)
	}
	cfg := experiments.Default(scale)

	var runners []experiments.Runner
	if *expName == "all" {
		runners = experiments.All()
	} else {
		r, ok := experiments.ByName(*expName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", *expName)
			for _, r := range experiments.All() {
				fmt.Fprintf(os.Stderr, "  %-14s %s\n", r.Name, r.Desc)
			}
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	for _, r := range runners {
		fmt.Printf("== %s — %s (scale=%s)\n", r.Name, r.Desc, *scaleName)
		start := time.Now()
		if err := r.Run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.Name, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v\n\n", r.Name, time.Since(start).Round(time.Millisecond))
	}
}
