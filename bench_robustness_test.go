package blockfanout

import (
	"os"
	"testing"
	"time"

	"blockfanout/internal/benchjson"
)

// TestWriteBenchRobustnessJSON regenerates BENCH_robustness.json: the cost
// of pivot-breakdown detection in BFAC (checked vs check-free Cholesky per
// block width) and the latency of a solve through the hardened serving
// path. Opt-in because timing runs are meaningless on a loaded machine:
//
//	BENCH_JSON=1 go test -run WriteBenchRobustnessJSON .
func TestWriteBenchRobustnessJSON(t *testing.T) {
	if os.Getenv("BENCH_JSON") == "" {
		t.Skip("set BENCH_JSON=1 to measure robustness overhead and rewrite BENCH_robustness.json")
	}
	rep, err := benchjson.CollectRobustness(300*time.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteFile("BENCH_robustness.json"); err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.PivotChecks {
		if row.CheckedGFlops <= 0 || row.NoChecksGFlops <= 0 {
			t.Fatalf("w=%d measured no throughput", row.Width)
		}
	}
	// The acceptance bar: breakdown detection must cost under ~2% of BFAC
	// throughput. Allow slack for timer noise on shared CI machines; the
	// committed report carries the measured numbers.
	if rep.MaxOverheadPercent > 5 {
		t.Errorf("pivot checks cost %.1f%% of BFAC throughput; expected ≈<2%%", rep.MaxOverheadPercent)
	}
	if rep.ServerSolveMs <= 0 {
		t.Fatal("server solve measured no latency")
	}
	d := rep.Durability
	if d == nil || d.ColdFirstSolveMs <= 0 || d.WarmFirstSolveMs <= 0 {
		t.Fatal("durability section measured nothing")
	}
	// Warm restart must beat cold time-to-first-solve — restoring a
	// snapshot that is slower than refactorizing would be pointless.
	if d.WarmFirstSolveMs >= d.ColdFirstSolveMs {
		t.Errorf("warm first solve %.2fms not faster than cold %.2fms", d.WarmFirstSolveMs, d.ColdFirstSolveMs)
	}
	// The write-behind checkpoint must stay off the critical path: <3% on
	// the refactor latency, with slack for timer noise on shared machines.
	if d.WriteBehindOvhdPct > 5 {
		t.Errorf("write-behind snapshotting costs %.1f%% of refactor latency; expected ≈<3%%", d.WriteBehindOvhdPct)
	}
	t.Logf("wrote BENCH_robustness.json: max pivot-check overhead %.2f%%, server solve %.2fms, warm/cold %.2f/%.2fms (%.1fx), write-behind %.2f%%",
		rep.MaxOverheadPercent, rep.ServerSolveMs,
		d.WarmFirstSolveMs, d.ColdFirstSolveMs, d.WarmSpeedupX, d.WriteBehindOvhdPct)

	// Overload acceptance: under a sustained two-tenant flood past
	// capacity, admission control must keep degradation graceful.
	o := rep.Overload
	if o == nil || o.QuietSolves == 0 {
		t.Fatal("overload section measured nothing")
	}
	// The quiet tenant's admitted interactive p99 stays within ~2× its
	// unloaded p99 (slack for shared-machine timer noise).
	if o.P99RatioX > 2.5 {
		t.Errorf("loaded interactive p99 is %.1fx the unloaded p99; expected ≈<2x", o.P99RatioX)
	}
	// The aggressive tenant cannot push the quiet tenant's error rate
	// above its quota share; paced inside its limits, that share is ~0.
	if o.QuietErrorRate > 0.02 {
		t.Errorf("quiet tenant error rate %.3f under flood; expected ≈0", o.QuietErrorRate)
	}
	// The flood itself must be real — overflow rejected, never hung — and
	// every rejection must say when to come back.
	if o.AggressiveRejected == 0 {
		t.Error("flood produced no rejections; the experiment never exceeded capacity")
	}
	if o.RejectionsRetryAfter != o.Rejections {
		t.Errorf("%d of %d rejections carried Retry-After; expected all", o.RejectionsRetryAfter, o.Rejections)
	}
	// Brownout transitions are observable through the public surfaces.
	if o.BrownoutTransitions == 0 {
		t.Error("no brownout transitions recorded in /metrics under sustained overload")
	}
	t.Logf("overload: %.1fx offered, interactive p99 %.2f→%.2fms (%.2fx), quiet errors %d/%d, %d rejections (all Retry-After: %v), %d transitions, peak state %s",
		o.OfferedMultiple, o.UnloadedP99Ms, o.LoadedP99Ms, o.P99RatioX,
		o.QuietErrors, o.QuietSolves, o.Rejections,
		o.RejectionsRetryAfter == o.Rejections, o.BrownoutTransitions, o.PeakState)
}
