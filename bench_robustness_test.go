package blockfanout

import (
	"os"
	"testing"
	"time"

	"blockfanout/internal/benchjson"
)

// TestWriteBenchRobustnessJSON regenerates BENCH_robustness.json: the cost
// of pivot-breakdown detection in BFAC (checked vs check-free Cholesky per
// block width) and the latency of a solve through the hardened serving
// path. Opt-in because timing runs are meaningless on a loaded machine:
//
//	BENCH_JSON=1 go test -run WriteBenchRobustnessJSON .
func TestWriteBenchRobustnessJSON(t *testing.T) {
	if os.Getenv("BENCH_JSON") == "" {
		t.Skip("set BENCH_JSON=1 to measure robustness overhead and rewrite BENCH_robustness.json")
	}
	rep, err := benchjson.CollectRobustness(300*time.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteFile("BENCH_robustness.json"); err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.PivotChecks {
		if row.CheckedGFlops <= 0 || row.NoChecksGFlops <= 0 {
			t.Fatalf("w=%d measured no throughput", row.Width)
		}
	}
	// The acceptance bar: breakdown detection must cost under ~2% of BFAC
	// throughput. Allow slack for timer noise on shared CI machines; the
	// committed report carries the measured numbers.
	if rep.MaxOverheadPercent > 5 {
		t.Errorf("pivot checks cost %.1f%% of BFAC throughput; expected ≈<2%%", rep.MaxOverheadPercent)
	}
	if rep.ServerSolveMs <= 0 {
		t.Fatal("server solve measured no latency")
	}
	d := rep.Durability
	if d == nil || d.ColdFirstSolveMs <= 0 || d.WarmFirstSolveMs <= 0 {
		t.Fatal("durability section measured nothing")
	}
	// Warm restart must beat cold time-to-first-solve — restoring a
	// snapshot that is slower than refactorizing would be pointless.
	if d.WarmFirstSolveMs >= d.ColdFirstSolveMs {
		t.Errorf("warm first solve %.2fms not faster than cold %.2fms", d.WarmFirstSolveMs, d.ColdFirstSolveMs)
	}
	// The write-behind checkpoint must stay off the critical path: <3% on
	// the refactor latency, with slack for timer noise on shared machines.
	if d.WriteBehindOvhdPct > 5 {
		t.Errorf("write-behind snapshotting costs %.1f%% of refactor latency; expected ≈<3%%", d.WriteBehindOvhdPct)
	}
	t.Logf("wrote BENCH_robustness.json: max pivot-check overhead %.2f%%, server solve %.2fms, warm/cold %.2f/%.2fms (%.1fx), write-behind %.2f%%",
		rep.MaxOverheadPercent, rep.ServerSolveMs,
		d.WarmFirstSolveMs, d.ColdFirstSolveMs, d.WarmSpeedupX, d.WriteBehindOvhdPct)
}
