package blockfanout

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"blockfanout/internal/benchjson"
	"blockfanout/internal/gen"
	"blockfanout/internal/server"
	"blockfanout/internal/sparse"
)

// BenchmarkServerSolve measures the warm serving path over real HTTP: the
// factor is cached and live, each iteration is one single-RHS POST
// /v1/solve. This is the steady-state latency a long-running client sees.
func BenchmarkServerSolve(b *testing.B) {
	srv := server.New(server.Config{Procs: 4, BatchWindow: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	m := gen.IrregularMesh(2000, 6, 3, 42)
	id, err := postFactor(ts.URL, m)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, m.N)
	for i := range rhs {
		rhs[i] = float64(i%17) - 8
	}
	raw, _ := json.Marshal(map[string]any{"id": id, "b": rhs})
	body := string(raw)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// BenchmarkServerRefactor measures the warm factor path: plan-cache hit +
// numeric-only refactorization per iteration.
func BenchmarkServerRefactor(b *testing.B) {
	srv := server.New(server.Config{Procs: 4, BatchWindow: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	m := gen.IrregularMesh(2000, 6, 3, 42)
	if _, err := postFactor(ts.URL, m); err != nil {
		b.Fatal(err)
	}
	raw, _ := json.Marshal(map[string]any{
		"n": m.N, "colptr": m.ColPtr, "rowind": m.RowInd, "val": m.Val,
	})
	body := string(raw)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/factor", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func postFactor(url string, m *sparse.Matrix) (string, error) {
	raw, err := json.Marshal(map[string]any{
		"n": m.N, "colptr": m.ColPtr, "rowind": m.RowInd, "val": m.Val,
	})
	if err != nil {
		return "", err
	}
	resp, err := http.Post(url+"/v1/factor", "application/json", strings.NewReader(string(raw)))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("factor: status %d", resp.StatusCode)
	}
	var fr struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		return "", err
	}
	return fr.ID, nil
}

// TestWriteBenchServiceJSON regenerates BENCH_service.json, the committed
// serving-path report (cold factor vs warm refactor, solo vs batched solve).
// Opt-in like the kernel report:
//
//	BENCH_JSON=1 go test -run WriteBenchServiceJSON .
func TestWriteBenchServiceJSON(t *testing.T) {
	if os.Getenv("BENCH_JSON") == "" {
		t.Skip("set BENCH_JSON=1 to measure the service and rewrite BENCH_service.json")
	}
	rep, err := benchjson.CollectService(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteFile("BENCH_service.json"); err != nil {
		t.Fatal(err)
	}
	if rep.RefactorSpeedup <= 1 {
		t.Errorf("refactor (%.2fms) not faster than cold factor (%.2fms)", rep.RefactorMs, rep.ColdFactorMs)
	}
	t.Logf("wrote BENCH_service.json: cold=%.1fms refactor=%.1fms (%.1fx), solo=%.2fms batched/rhs=%.2fms (%.1fx)",
		rep.ColdFactorMs, rep.RefactorMs, rep.RefactorSpeedup,
		rep.SoloSolveMs, rep.BatchedPerRHSMs, rep.BatchSpeedup)
}

